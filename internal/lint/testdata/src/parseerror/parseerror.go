// Package parseerror is a fixture for the driver's parse-failure path: a
// file that does not parse must surface as positioned "parse" findings
// (exit 1), not abort the run. The body below is deliberately broken —
// keep this file out of any gofmt sweep.
package parseerror

//pacor:pkgpath fixture/internal/route

func broken() int {
	x := 1 +
	return x
}
