// Package sharedcapture is a fixture for the sharedcapture analyzer: data
// races on variables captured by spawned closures. The sync package is
// real — the analyzer matches Mutex/WaitGroup by type name, and the
// stdlib types carry the real ones.
package sharedcapture

import "sync"

func sink(int) {}

// raceWrite spawns a closure that writes total while the spawner keeps
// using it before any barrier: a textbook captured-variable race.
func raceWrite() int {
	done := make(chan struct{})
	total := 0
	go func() { // want `captured variable total is accessed by both this goroutine and its spawner`
		total = 42
		close(done)
	}()
	total++
	<-done
	return total
}

// lockedOK guards both sides with the same mutex: the must-locksets
// overlap, so no pair of accesses races.
func lockedOK(mu *sync.Mutex) int {
	done := make(chan struct{})
	total := 0
	go func() {
		mu.Lock()
		total = 42
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	total++
	mu.Unlock()
	<-done
	return total
}

// waitedOK only touches the captured variable after the WaitGroup barrier:
// the spawner's concurrent window is empty.
func waitedOK() int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total = 42
	}()
	wg.Wait()
	total++
	return total
}

// loopRace spawns the closure once per iteration; every instance writes
// the same captured accumulator, so the instances race with each other
// even though the spawner never touches it.
func loopRace(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `closure spawned in a loop writes captured variable total without a lock`
			total++
			wg.Done()
		}()
	}
	wg.Wait()
	return total
}

// loopLockedOK is the same shape with the write under a lock: concurrent
// instances serialize on it.
func loopLockedOK(mu *sync.Mutex, n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			mu.Lock()
			total++
			mu.Unlock()
			wg.Done()
		}()
	}
	wg.Wait()
	return total
}

// perIterOK captures the Go 1.22 per-iteration loop variable: each
// goroutine gets its own copy, so there is nothing shared to race on.
func perIterOK(vals []int) {
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func() {
			sink(v)
			wg.Done()
		}()
	}
	wg.Wait()
}

// elementWritesOK shards a slice by index across goroutines — the repo's
// fan-out idiom. Element stores are deliberately not tracked as writes.
func elementWritesOK(out []int) {
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func() {
			out[i] = i * i
			wg.Done()
		}()
	}
	wg.Wait()
}
