// Package commitorder is a fixture for the commitorder analyzer. The
// pkgpath directive places it inside internal/route so the hot-package
// gate applies; the sched stand-in spawns its workers in a loop, which is
// what makes the spawn graph classify them as worker-role (spawn-only).
package commitorder

//pacor:pkgpath fixture/internal/route

import "sync"

// Pt stands in for geom.Pt.
type Pt struct{ X, Y int }

// ObsMap stands in for grid.ObsMap.
type ObsMap struct{ bits []bool }

// Set mirrors the real mutator.
func (o *ObsMap) Set(i int, v bool) { o.bits[i] = v }

// Blocked mirrors the real obstacle query.
func (o *ObsMap) Blocked(p Pt) bool { return len(o.bits) > 0 && o.bits[0] }

// sched stands in for the scheduler: shared obstacle state behind a lock,
// workers fanned out in a loop.
type sched struct {
	mu  sync.Mutex
	wg  sync.WaitGroup
	obs *ObsMap
}

// Run fans the workers out. Exported, so it seeds the main role; go edges
// do not propagate it to the spawned methods.
func (s *sched) Run(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(4)
		go s.worker()
		go s.lockedWorker()
		go s.scout()
		go s.scratchOK()
	}
	s.wg.Wait()
}

// worker mutates the shared obstacle map and enters the locked commit
// helper, both without holding the lock.
func (s *sched) worker() {
	defer s.wg.Done()
	s.obs.Set(1, true) // want `worker-role worker mutates shared obstacle state \(ObsMap\.Set\) without holding a lock`
	s.commit()         // want `worker-role worker calls //pacor:locked .*commit without holding a lock`
}

// lockedWorker does the same work under the lock: the commit path.
func (s *sched) lockedWorker() {
	defer s.wg.Done()
	s.mu.Lock()
	s.obs.Set(1, true)
	s.commit()
	s.mu.Unlock()
}

// scout reads obstacle state speculatively with no workspace anywhere in
// scope: on a worker role that read is unvalidatable.
func (s *sched) scout() {
	defer s.wg.Done()
	_ = s.obs.Blocked(Pt{}) // want `ObsMap.Blocked read is reachable before any workspace visit stamp`
}

// scratchOK mutates a worker-local scratch map: per-goroutine state needs
// no lock.
func (s *sched) scratchOK() {
	defer s.wg.Done()
	local := &ObsMap{bits: make([]bool, 4)}
	local.Set(1, true)
}

// commit applies staged cells to the shared map. Callers hold s.mu.
//
//pacor:locked
func (s *sched) commit() {
	s.obs.Set(2, true)
}
