// Package wsaliasing is a fixture for the wsaliasing analyzer. The local
// Grid/Workspace stand-ins keep it self-contained: the analyzer matches
// AcquireWorkspace/ReleaseWorkspace by name.
package wsaliasing

//pacor:pkgpath fixture/internal/search

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Cells mirrors the real grid API.
func (g Grid) Cells() int { return g.W * g.H }

// Workspace stands in for route.Workspace.
type Workspace struct{ cells int }

// Search stands in for a workspace-backed search.
func (w *Workspace) Search(from, to int) int { return from + to + w.cells }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace(g Grid) *Workspace { return &Workspace{cells: g.Cells()} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// balanced is the blessed acquire/use/release pattern.
func balanced(g Grid) int {
	ws := AcquireWorkspace(g)
	n := ws.Search(0, 1)
	ReleaseWorkspace(ws)
	return n
}

// deferred releases via defer: covered on every path, early returns
// included.
func deferred(g Grid, fail bool) int {
	ws := AcquireWorkspace(g)
	defer ReleaseWorkspace(ws)
	if fail {
		return -1
	}
	return ws.Search(1, 2)
}

// leakOnError releases only on the happy path: the error return leaks the
// workspace back to the garbage collector instead of the pool.
func leakOnError(g Grid, fail bool) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	if fail {
		return -1
	}
	n := ws.Search(2, 3)
	ReleaseWorkspace(ws)
	return n
}

// neverReleased has no release at all; -fix inserts a deferred one here.
func neverReleased(g Grid) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	return ws.Search(3, 4)
}

// useAfterRelease touches the workspace once the pool owns it again.
func useAfterRelease(g Grid) int {
	ws := AcquireWorkspace(g)
	ReleaseWorkspace(ws)
	return ws.Search(4, 5) // want `workspace ws is used after ReleaseWorkspace`
}

// doubleRelease puts the workspace back twice.
func doubleRelease(g Grid) {
	ws := AcquireWorkspace(g)
	ReleaseWorkspace(ws)
	ReleaseWorkspace(ws) // want `workspace ws may already be released here`
}

// branchReleaseUse releases on both branches, then uses after the join:
// the use-after-release is visible only through the dataflow join.
func branchReleaseUse(g Grid, cond bool) int {
	ws := AcquireWorkspace(g)
	if cond {
		ReleaseWorkspace(ws)
	} else {
		ReleaseWorkspace(ws)
	}
	return ws.Search(5, 6) // want `workspace ws is used after ReleaseWorkspace`
}

// returned escapes to the caller: the obligations go with it.
func returned(g Grid) *Workspace {
	ws := AcquireWorkspace(g)
	return ws
}

func consume(ws *Workspace) int {
	n := ws.Search(6, 7)
	ReleaseWorkspace(ws)
	return n
}

// passedOn hands the workspace to a callee that takes ownership.
func passedOn(g Grid) int {
	ws := AcquireWorkspace(g)
	return consume(ws)
}

// twoSpawns shares one workspace between two goroutines: the search
// arrays race.
func twoSpawns(g Grid, ch chan int) {
	ws := AcquireWorkspace(g) // want `workspace ws is referenced by 2 goroutine spawns`
	go func() { ch <- ws.Search(1, 1) }()
	go func() { ch <- ws.Search(2, 2) }()
}

// spawnInLoop starts many goroutines from one spawn site: counted double.
func spawnInLoop(g Grid, ch chan int) {
	ws := AcquireWorkspace(g) // want `workspace ws is referenced by 2 goroutine spawns`
	for i := 0; i < 4; i++ {
		go func() { ch <- ws.Search(i, i) }()
	}
}

// oneSpawn transfers ownership to a single goroutine, which releases it.
func oneSpawn(g Grid, ch chan int) {
	ws := AcquireWorkspace(g)
	go func() {
		ch <- ws.Search(3, 3)
		ReleaseWorkspace(ws)
	}()
}

// loopAcquire pairs acquire and release inside one loop body; the back
// edge must not confuse the state.
func loopAcquire(g Grid, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		ws := AcquireWorkspace(g)
		total += ws.Search(i, i)
		ReleaseWorkspace(ws)
	}
	return total
}

// methodCalls use the workspace through selectors: receivers are uses,
// not escapes, so release obligations stay local and satisfied.
func methodCalls(g Grid, cond bool) int {
	ws := AcquireWorkspace(g)
	n := ws.Search(0, 0)
	if cond {
		n += ws.Search(1, 0)
	}
	ReleaseWorkspace(ws)
	return n
}

// suppressed opts out with a justification.
func suppressed(g Grid) int {
	ws := AcquireWorkspace(g) //pacor:allow wsaliasing fixture documents the justified opt-out; caller releases via registry
	return ws.Search(9, 9)
}

// Replay stands in for a cached-result replay read off the workspace's
// negotiation-cache state.
func (w *Workspace) Replay(i int) int { return w.cells + i }

// replayAfterRelease replays a cached cone after the pool owns the
// workspace again: the next acquirer resets and rewrites the cache
// entries, so the replayed path is garbage.
func replayAfterRelease(g Grid) int {
	ws := AcquireWorkspace(g)
	ReleaseWorkspace(ws)
	return ws.Replay(1) // want `workspace ws is used after ReleaseWorkspace`
}

// cacheAcrossCalls holds the workspace — and with it the cache state —
// for the whole negotiation, releasing on every path: the blessed shape
// for cache-carrying calls.
func cacheAcrossCalls(g Grid, rounds int) int {
	ws := AcquireWorkspace(g)
	defer ReleaseWorkspace(ws)
	total := 0
	for r := 0; r < rounds; r++ {
		total += ws.Replay(r)
	}
	return total
}
