// Package nostdout is a fixture for the nostdout analyzer: a library
// package (non-main) that writes where it should not.
package nostdout

import (
	"fmt"
	"io"
	"os"
)

// chatty prints straight to process stdout.
func chatty(x int) {
	fmt.Println("x =", x)     // want `fmt.Println writes to process stdout`
	fmt.Printf("x = %d\n", x) // want `fmt.Printf writes to process stdout`
	fmt.Print(x)              // want `fmt.Print writes to process stdout`
	print("dbg")              // want `builtin print writes to stderr`
	println("dbg")            // want `builtin println writes to stderr`
}

// grabsStdout smuggles the process stream out by reference.
func grabsStdout() io.Writer {
	return os.Stdout // want `os.Stdout referenced from a library package`
}

// injected is the blessed pattern: the caller decides where output goes.
func injected(w io.Writer, x int) {
	fmt.Fprintf(w, "x = %d\n", x)
}

// formatted builds strings without printing: fine.
func formatted(x int) string {
	return fmt.Sprintf("x = %d", x)
}

// stderr is permitted: diagnostics belong there and don't corrupt
// machine-readable stdout.
func stderr(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// suppressed is the justified opt-out.
func suppressed() {
	fmt.Println("banner") //pacor:allow nostdout interactive banner requested by caller
}
