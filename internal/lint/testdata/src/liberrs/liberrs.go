// Package liberrs is a fixture for the liberrs analyzer; the pkgpath
// directive places it inside a library package.
package liberrs

//pacor:pkgpath fixture/internal/flow

import (
	"errors"
	"strconv"
)

func fallible() error          { return errors.New("boom") }
func twoResults() (int, error) { return 0, errors.New("boom") }
func harmless() int            { return 1 }

var state int

// dropped discards errors in every shape the analyzer catches.
func dropped() {
	fallible()          // want `call discards its error result \(fallible\)`
	_ = fallible()      // want `blank assignment discards error from fallible`
	_, _ = twoResults() // want `blank assignment discards error from twoResults`
}

// deadDiscard assigns a side-effect-free value to blank.
func deadDiscard(up []float64) {
	_ = up    // want "dead discard `_ = up`"
	_ = state // want "dead discard `_ = state`"
}

// kept keeps a result: the v, _ := f() idiom stays legal.
func kept(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// pureCall has no error result: nothing to discard.
func pureCall() {
	harmless()
}

// deferred cleanup is conventional and exempt.
func deferred(c interface{ Close() error }) {
	defer c.Close()
}

// suppressed is the justified opt-out.
func suppressed() {
	_ = fallible() //pacor:allow liberrs best-effort cleanup, failure is benign
}
