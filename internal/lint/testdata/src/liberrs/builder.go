package liberrs

import (
	"fmt"
	"io"
	"strings"
)

// sink embeds an infallible writer behind a field: the exemption must
// resolve the receiver through the type checker, not the spelling.
type sink struct {
	buf strings.Builder
}

// builderShapes exercises the infallible-writer exemption in every call
// shape whose static receiver type guarantees a nil error.
func builderShapes(s *sink) string {
	var b strings.Builder
	b.WriteString("direct")
	s.buf.WriteString("field")
	(&b).WriteString("paren")
	(*strings.Builder).WriteString(&b, "methodexpr")
	fmt.Fprintf(&b, "dest=%s", "builder")
	return b.String() + s.buf.String()
}

// interfaceWriter reaches WriteString through io.StringWriter: the static
// type no longer guarantees a nil error, so the discard is flagged even
// when the dynamic value is a *strings.Builder.
func interfaceWriter(w io.StringWriter) {
	w.WriteString("x") // want `call discards its error result \(w.WriteString\)`
}

// methodValue stores the bound method in a variable: provenance is gone,
// the discard stays flagged.
func methodValue(b *strings.Builder) {
	ws := b.WriteString
	ws("x") // want `call discards its error result \(ws\)`
}
