// Package floateq is a fixture for the floateq analyzer; the pkgpath
// directive places it inside a numeric package.
package floateq

//pacor:pkgpath fixture/internal/lp

import "math"

const eps = 1e-9

// pivots compares computed floats directly: the simplex killer.
func pivots(a, b float64) bool {
	if a == b { // want `float == comparison; use a tolerance`
		return true
	}
	return a != b+1 // want `float != comparison; use a tolerance`
}

// tolerant is the blessed pattern.
func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// ints are exact: integer comparison is not a finding.
func ints(a, b int) bool {
	return a == b
}

// constants fold at compile time: exact by definition.
func constants() bool {
	return 0.1+0.2 == 0.30000000000000004
}

// infinity sentinels survive arithmetic exactly.
func infinity(x float64) bool {
	return x == math.Inf(1)
}

// float32 is just as unstable as float64.
func narrow(a, b float32) bool {
	return a == b // want `float == comparison; use a tolerance`
}

// suppressed documents a genuinely exact comparison.
func suppressed(x, sentinel float64) bool {
	return x == sentinel //pacor:allow floateq sentinel copied verbatim, never computed
}
