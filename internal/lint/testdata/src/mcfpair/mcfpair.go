// Package mcfpair is a fixture for the mcfpair analyzer: the min-cost-flow
// arena contract. The Graph stand-in carries the method set the analyzer
// matches by name; DecomposeUnitPaths is a method on Graph, exactly as in
// internal/mcf.
package mcfpair

// Graph stands in for mcf.Graph.
type Graph struct{ n int }

// NewGraph mirrors the real constructor: a fresh graph is flow-free.
func NewGraph(n int) *Graph { return &Graph{n: n} }

// MinCostFlow mirrors the solver entry point.
func (g *Graph) MinCostFlow(s, t, maxFlow int) (int, int) { return 0, 0 }

// Commit freezes the current flow as the new base.
func (g *Graph) Commit() {}

// Reset drops all flow.
func (g *Graph) Reset() {}

// SetCost re-prices an arc; legal only on a flow-free graph.
func (g *Graph) SetCost(id, cost int) {}

// DecomposeUnitPaths reads the unit flow left by the last solve.
func (g *Graph) DecomposeUnitPaths(s, t int) []int { return nil }

// Solver stands in for the alternative mcf entry point that takes the
// graph as its first argument.
type Solver struct{}

// MinCostFlow mirrors Solver.MinCostFlow(g, src, dst, maxFlow).
func (Solver) MinCostFlow(g *Graph, s, t, maxFlow int) (int, int) { return 0, 0 }

// repriceDirty re-prices after a solve without Commit or Reset: the
// residual arcs still carry the old flow.
func repriceDirty() {
	g := NewGraph(4)
	g.SetCost(0, 1) // fresh graph: legal
	g.MinCostFlow(0, 1, 1)
	g.SetCost(0, 2) // want `SetCost re-prices a graph that may still carry flow from a MinCostFlow`
}

// decomposeUnsolved reads unit paths off a graph that has no flow on any
// path here: the decomposition is vacuously empty.
func decomposeUnsolved() {
	g := NewGraph(4)
	g.DecomposeUnitPaths(0, 1) // want `DecomposeUnitPaths on a flow-free graph`
}

// decomposeAfterCommit is the same mistake after a Commit wiped the flow.
func decomposeAfterCommit(g *Graph) {
	g.MinCostFlow(0, 1, 1)
	g.Commit()
	g.DecomposeUnitPaths(0, 1) // want `DecomposeUnitPaths on a flow-free graph`
}

// roundsOK is the repo's negotiation idiom: solve, decompose the unit
// flow, commit it, re-price for the next round.
func roundsOK(g *Graph, rounds int) int {
	total := 0
	for r := 0; r < rounds; r++ {
		f, c := g.MinCostFlow(0, 1, 1)
		if f == 0 {
			break
		}
		total += c
		g.DecomposeUnitPaths(0, 1)
		g.Commit()
		g.SetCost(0, total)
	}
	return total
}

// solverFormOK marks the graph solved through the Solver-first calling
// convention, so the decomposition has flow to read.
func solverFormOK(sv Solver) {
	g := NewGraph(2)
	sv.MinCostFlow(g, 0, 1, -1)
	g.DecomposeUnitPaths(0, 1)
}

// fieldDirty tracks the graph through a single-root field path.
func fieldDirty(w *wrap) {
	w.graph.MinCostFlow(0, 1, 1)
	w.graph.SetCost(0, 2) // want `SetCost re-prices a graph that may still carry flow from a MinCostFlow`
}

type wrap struct{ graph Graph }

// helperSilence routes the state change through a helper the analyzer
// does not model: both facts drop to unknown, so no claim is made.
func helperSilence(g *Graph) {
	g.MinCostFlow(0, 1, 1)
	reprice(g)
	g.SetCost(0, 1)
}

func reprice(g *Graph) { g.Reset() }

// branchDirty only solves on one branch; the may-fact still flags the
// re-price because one path reaches it carrying flow.
func branchDirty(g *Graph, solve bool) {
	if solve {
		g.MinCostFlow(0, 1, 1)
	}
	g.SetCost(0, 1) // want `SetCost re-prices a graph that may still carry flow from a MinCostFlow`
}
