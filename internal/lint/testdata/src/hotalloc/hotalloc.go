// Package hotalloc is a fixture for the hotalloc analyzer; the pkgpath
// directive below places it inside a hot package.
package hotalloc

//pacor:pkgpath fixture/internal/route

import "container/heap" // want `container/heap boxes every node`

// search is an inner-loop function: every allocation is a finding.
func search(n int, open *intHeap) []int32 {
	stamp := make([]int32, n) // want `make in hot function search allocates per call`
	var out []int32
	out = append(out, stamp...) // want `append in hot function search may grow its backing array`
	p := new(int32)             // want `new in hot function search allocates per call`
	_ = p
	heap.Push(open, 1)  // want `container/heap call in hot function search boxes its argument`
	box := &node{id: 1} // want `pointer composite literal in hot function search allocates`
	_ = box
	lit := []int{1, 2, 3} // want `slice composite literal in hot function search allocates`
	_ = lit
	seen := map[int]bool{} // want `map composite literal in hot function search allocates`
	_ = seen
	return out
}

// NewBuffers is constructor-shaped: one-time construction is exempt.
func NewBuffers(n int) []int32 {
	return make([]int32, n)
}

// value composite literals live on the stack: not a finding.
func valueLit() node {
	return node{id: 2}
}

// amortized shows the justified opt-out for deliberate growth.
func amortized(arena []int32, v int32) []int32 {
	arena = append(arena, v) //pacor:allow hotalloc amortized arena growth reused across searches
	return arena
}

// fanOut spawns per-call goroutines: the closure capture allocates on every
// spawn, and allocation inside the closure body runs on the same hot path as
// the enclosing function.
func fanOut(n int, out chan []int32) {
	for i := 0; i < n; i++ {
		go func() { // want `goroutine closure in hot function fanOut allocates its capture per spawn`
			buf := make([]int32, n) // want `make in hot function fanOut allocates per call`
			out <- buf
		}()
	}
}

// stashedClosure allocates a capturing closure without go: the FuncLit body
// is still hot-path code, so the append inside it is a finding even though
// the closure value itself is not.
func stashedClosure(sink *func(int32)) {
	var acc []int32
	*sink = func(v int32) {
		acc = append(acc, v) // want `append in hot function stashedClosure may grow its backing array`
	}
}

// workerPool shows the sanctioned shape: one spawn per batch, amortized over
// the batch's items, suppressed with a justification at the spawn site.
func workerPool(items []int32, work func(int32)) {
	done := make(chan struct{}) //pacor:allow hotalloc one channel per batch, amortized over its items
	go func() {                 //pacor:allow hotalloc one worker spawn per batch, amortized over its items
		for _, it := range items {
			work(it)
		}
		close(done)
	}()
	<-done
}

type node struct{ id int }

type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) } // want `append in hot function Push may grow its backing array`
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// entry stands in for a per-edge negotiation-cache entry resident on the
// pooled workspace: a cached path plus the recorded search cone.
type entry struct {
	path   []int32
	visits []int32
}

// recordCone copies a search's visit cone into its cache slot on every
// miss — an inner-loop write, so the copy-growth must be justified.
func recordCone(e *entry, visits []int32) {
	e.visits = append(e.visits[:0], visits...) // want `append in hot function recordCone may grow its backing array`
}

// recordConeAmortized is the sanctioned form: the per-entry buffer grows
// once and is reused across rounds.
func recordConeAmortized(e *entry, visits []int32) {
	e.visits = append(e.visits[:0], visits...) //pacor:allow hotalloc per-entry cone buffer grown once, reused across rounds
}

// resetEntries rebuilds the entry table per negotiation run instead of
// reusing the workspace-resident one.
func resetEntries(n int) []entry {
	table := make([]entry, n) // want `make in hot function resetEntries allocates per call`
	return table
}

// resetEntriesResident documents the workspace-resident shape: the
// function-scope justification covers the grow-on-demand allocations.
//
//pacor:allow hotalloc entry table is workspace-resident, (re)allocated only on edge-count growth
func resetEntriesResident(table []entry, n int) []entry {
	if cap(table) < n {
		table = make([]entry, n)
	}
	return table[:n]
}

// ring stands in for the Dial bucket queue: head/tail bucket chains plus an
// append-only node pool, all meant to be workspace-resident.
type ring struct {
	head  []int32
	tail  []int32
	nodes []int32
}

// prepFresh rebuilds the bucket arrays on every search — the shape the
// analyzer exists to catch at open-list swap sites.
func prepFresh(span int) *ring {
	q := &ring{ // want `pointer composite literal in hot function prepFresh allocates`
		head: make([]int32, span), // want `make in hot function prepFresh allocates per call`
		tail: make([]int32, span), // want `make in hot function prepFresh allocates per call`
	}
	return q
}

// prepResident is the sanctioned shape: the rings grow to the largest span
// seen and are only cleared, never reallocated, on later searches.
//
//pacor:allow hotalloc bucket arrays sized to the largest span seen, reused across searches
func prepResident(q *ring, span int) {
	if len(q.head) < span {
		q.head = make([]int32, span)
		q.tail = make([]int32, span)
	}
	h := q.head[:span]
	for i := range h {
		h[i] = -1
	}
	q.nodes = q.nodes[:0]
}

// push feeds the node pool; growth is append-only within a search and the
// capacity is retained across searches, so the site carries a justification.
func push(q *ring, v int32) {
	q.nodes = append(q.nodes, v) //pacor:allow hotalloc append-only node pool, capacity retained across searches
}

// pushBoxed is the unsanctioned version of the same site: no justification,
// so the growth is a finding.
func pushBoxed(q *ring, v int32) {
	q.nodes = append(q.nodes, v) // want `append in hot function pushBoxed may grow its backing array`
}
