// Package seedjournal is a fixture for the journalpair analyzer over the
// seed/restore boundary of the cross-run cache: the obstacle journal
// recording a seeded attempt must be stopped whether the attempt commits,
// restores to the pre-seed mark, or bails out on a dirty cone — rewinding
// to a mark never closes the journal.
package seedjournal

//pacor:pkgpath fixture/internal/route

// Pt stands in for geom.Pt.
type Pt struct{ X, Y int }

// ObsMap stands in for grid.ObsMap.
type ObsMap struct {
	bits    []bool
	journal []int
}

// Blocked mirrors the real obstacle query.
func (o *ObsMap) Blocked(p Pt) bool { return len(o.bits) > 0 && o.bits[0] }

// StartJournal mirrors the recording switch.
func (o *ObsMap) StartJournal() { o.journal = o.journal[:0] }

// StopJournal mirrors the recording stop.
func (o *ObsMap) StopJournal() { o.journal = nil }

// RewindJournal mirrors the rollback.
func (o *ObsMap) RewindJournal(n int) { o.journal = o.journal[:n] }

// JournalLen mirrors the mark query.
func (o *ObsMap) JournalLen() int { return len(o.journal) }

// Seed stands in for a captured parent run.
type Seed struct{ rounds int }

// usable mirrors the seed validity gate.
func (s *Seed) usable() bool { return s != nil && s.rounds > 0 }

// replay stands in for serving one captured round against the journal.
func replay(o *ObsMap, p Pt) bool { return !o.Blocked(p) }

// seededPaired is the blessed shape: record the seeded attempt, restore
// to the mark when the replay diverges, stop either way.
func seededPaired(o *ObsMap, s *Seed, p Pt) bool {
	o.StartJournal()
	mark := o.JournalLen()
	ok := replay(o, p)
	if !ok && s.usable() {
		o.RewindJournal(mark)
	}
	o.StopJournal()
	return ok
}

// restore closes the journal on every path: callers that hand the map to
// it have discharged the obligation through its summary.
func restore(o *ObsMap, mark int) {
	o.RewindJournal(mark)
	o.StopJournal()
}

// restoredByHelper is clean interprocedurally: restore always stops.
func restoredByHelper(o *ObsMap, p Pt) bool {
	o.StartJournal()
	mark := o.JournalLen()
	if !replay(o, p) {
		restore(o, mark)
		return false
	}
	o.StopJournal()
	return true
}

// seedHitRewindLeak rewinds to the pre-seed mark on the divergence path
// and returns with the journal still recording every later edit.
func seedHitRewindLeak(o *ObsMap, s *Seed, p Pt) bool {
	o.StartJournal() // want `journal on o is started here but does not reach StopJournal on every path`
	mark := o.JournalLen()
	if s.usable() && !replay(o, p) {
		o.RewindJournal(mark)
		return false
	}
	o.StopJournal()
	return true
}

// captureNeverStops starts recording for a capture and forgets the stop
// entirely on the seed-miss path and the hit path alike.
func captureNeverStops(o *ObsMap, p Pt) bool {
	o.StartJournal() // want `journal on o is started here but does not reach StopJournal on every path`
	return replay(o, p)
}
