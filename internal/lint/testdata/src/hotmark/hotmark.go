// Package hotmark is a fixture for //pacor:hot function marking: the
// package path is cold, only the marked function is checked.
package hotmark

// inner is the hand-marked hot loop.
//
//pacor:hot
func inner(buf []int, v int) []int {
	return append(buf, v) // want `append in hot function inner may grow its backing array`
}

// cold is unmarked: allocations here are fine.
func cold(n int) []int {
	return make([]int, n)
}

// NewHot is marked hot AND constructor-named: the mark wins, because
// marking a constructor hot is an explicit request to check it.
//
//pacor:hot
func NewHot(n int) []int {
	return make([]int, n) // want `make in hot function NewHot allocates per call`
}
