// Package directive is a fixture for driver-level directive validation:
// an allow without a justification is itself a finding, and does not
// suppress anything.
package directive

//pacor:pkgpath fixture/internal/flow

import "errors"

func fallible() error { return errors.New("boom") }

// naked has an unjustified allow: both the directive and the original
// finding are reported.
func naked() {
	_ = fallible() //pacor:allow liberrs
	// The line above produces two findings (checked by the driver test,
	// not by want-annotations, because the directive finding carries the
	// pseudo-analyzer name "directive").
}
