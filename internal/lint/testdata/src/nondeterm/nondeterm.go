// Package nondeterm is a fixture for the nondeterm analyzer; the pkgpath
// directive places it inside a library package.
package nondeterm

//pacor:pkgpath fixture/internal/sched

import (
	"math/rand"
	"time"
)

// globalRand draws from the process-global, nondeterministically seeded
// source.
func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global random source`
}

// seededRand builds an explicit source: the deterministic idiom, exempt.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// racingSelect commits to a nondeterministically chosen ready case when
// both channels have data.
func racingSelect(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// drainSelect has one communication case plus default: no race between
// ready cases.
func drainSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// leakSend publishes map iteration order across goroutines. (This check
// moved here from maporder: the receiver observes the randomized order.)
func leakSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map range leaks iteration order across goroutines`
	}
}

// sliceSend ranges over a slice: ordered, nothing to report.
func sliceSend(s []string, ch chan string) {
	for _, v := range s {
		ch <- v
	}
}

// clockBranch lets wall-clock time steer control flow: under load the
// loop exits earlier and routing output changes run to run.
func clockBranch(deadline time.Duration, work func() bool) bool {
	start := time.Now()
	for work() {
		if time.Since(start) > deadline { // want `wall-clock time steers control flow`
			return false
		}
	}
	return true
}

// timedStage measures a stage without branching on the result: reporting
// durations is fine.
func timedStage(work func()) time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// taintedVar tracks the clock through an assignment chain into a loop
// condition.
func taintedVar(budget time.Duration, work func()) int {
	t0 := time.Now()
	work()
	elapsed := time.Since(t0)
	remaining := budget - elapsed
	n := 0
	for remaining > 0 { // want `wall-clock time steers control flow`
		n++
		remaining = 0
	}
	return n
}

// clearedTaint overwrites the clock-derived value before branching: the
// strong update clears the taint.
func clearedTaint() int {
	x := time.Now().Nanosecond()
	x = 42
	n := 0
	for i := 0; i < x; i++ {
		n++
	}
	return n
}

// suppressed opts out with a justification.
func suppressed() int {
	return rand.Intn(3) //pacor:allow nondeterm fixture demonstrates the justified opt-out
}
