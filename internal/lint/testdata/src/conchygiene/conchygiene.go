// Package conchygiene is a fixture for the conchygiene analyzer:
// WaitGroup ordering and channel liveness, the hangs-not-races half of
// the concurrency layer.
package conchygiene

import "sync"

func sink(int) {}

// addAfterGo arms the group after the goroutine is already running: Wait
// can observe the zero counter and return before Done.
func addAfterGo() {
	var wg sync.WaitGroup
	go func() {
		wg.Done()
	}()
	wg.Add(1) // want `wg.Add after a goroutine using the same WaitGroup was spawned`
	wg.Wait()
}

// addInLoopOK is the idiomatic fan-out: the Add textually follows a go
// statement only through the loop's back edge, which is not a real
// execution order violation.
func addInLoopOK(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// rearmOK waits the group out before arming the next round.
func rearmOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// doneSomePaths signals completion on one branch only: the other branch
// leaves Wait hanging forever.
func doneSomePaths(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `spawned closure calls wg.Done on some paths but not all`
		if ok {
			wg.Done()
		}
	}()
	wg.Wait()
}

// deferDoneOK discharges on every path by construction.
func deferDoneOK(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if !ok {
			return
		}
		sink(1)
	}()
	wg.Wait()
}

// bothBranchesOK calls Done on each branch explicitly.
func bothBranchesOK(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if ok {
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// nilSend sends on a channel that is never assigned: it blocks forever.
func nilSend() {
	var ch chan int
	ch <- 1 // want "send on ch, which is declared .var ch chan .* and never assigned on any path"
	<-ch
}

// nilSendSelectOK is the nil-disables-this-case idiom: a nil channel in a
// select communication clause just deselects the case.
func nilSendSelectOK() {
	var ch chan int
	select {
	case ch <- 1:
	default:
	}
}

// assignedSendOK assigns the channel on every path to the send.
func assignedSendOK(ready chan int) {
	var ch chan int
	ch = ready
	ch <- 1
}

// neverClosed ranges over a channel made here that nothing closes and
// that never escapes: the loop cannot terminate.
func neverClosed() int {
	ch := make(chan int)
	total := 0
	for v := range ch { // want `ranging over ch, a channel made in this function that is never closed`
		total += v
	}
	return total
}

// closedOK closes the channel from the producing goroutine.
func closedOK() int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// breakOK exits the loop explicitly, so the missing close is a judgment
// call rather than a guaranteed hang.
func breakOK() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	total := 0
	for v := range ch {
		total += v
		if total > 10 {
			break
		}
	}
	return total
}

// escapedOK hands the channel to a callee that may close it.
func escapedOK(drain func(chan int)) int {
	ch := make(chan int)
	drain(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
