// Package snapshotread is a fixture for the snapshotread analyzer. The
// pkgpath directive places it inside internal/route so the hot-package
// gate applies; the local Workspace/ObsMap stand-ins carry the method
// names the analyzer matches.
package snapshotread

//pacor:pkgpath fixture/internal/route

// Pt stands in for geom.Pt.
type Pt struct{ X, Y int }

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Index mirrors the real grid API.
func (g Grid) Index(p Pt) int { return p.Y*g.W + p.X }

// ObsMap stands in for grid.ObsMap.
type ObsMap struct{ bits []bool }

// Blocked mirrors the real obstacle query.
func (o *ObsMap) Blocked(p Pt) bool { return len(o.bits) > 0 && o.bits[0] }

// Workspace stands in for route.Workspace.
type Workspace struct{ track bool }

// StartVisitTracking mirrors the tracking switch.
func (w *Workspace) StartVisitTracking() { w.track = true }

// touch mirrors the per-cell stamp; it reports prior membership.
func (w *Workspace) touch(i int) bool { return w.track && i >= 0 }

// visit mirrors the unconditional stamp.
func (w *Workspace) visit(i int) { w.track = i >= 0 }

// stampedRead follows the protocol: the touch guards every path into the
// read.
func stampedRead(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	if w.touch(g.Index(p)) {
		return true
	}
	return obs.Blocked(p)
}

// unstampedRead reads obstacle state with no stamp anywhere: the
// scheduler cannot validate a speculative run that did this.
func unstampedRead(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	w.track = g.Cells() > 0
	return obs.Blocked(p) // want `ObsMap.Blocked read is reachable before any workspace visit stamp`
}

// Cells mirrors the real grid API.
func (g Grid) Cells() int { return g.W * g.H }

// branchRead stamps on one branch only: the read is reachable unstamped
// through the other — visible only to the must-analysis join.
func branchRead(w *Workspace, g Grid, obs *ObsMap, p Pt, fast bool) bool {
	if fast {
		w.touch(g.Index(p))
	}
	return obs.Blocked(p) // want `ObsMap.Blocked read is reachable before any workspace visit stamp`
}

// readBeforeStamp stamps too late: order within the straight line counts.
func readBeforeStamp(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	blocked := obs.Blocked(p) // want `ObsMap.Blocked read is reachable before any workspace visit stamp`
	w.touch(g.Index(p))
	return blocked
}

// loopRead stamps in the same condition, before the read, on every
// iteration.
func loopRead(w *Workspace, g Grid, obs *ObsMap, pts []Pt) int {
	n := 0
	for _, p := range pts {
		if w.touch(g.Index(p)) && obs.Blocked(p) {
			n++
		}
	}
	return n
}

// trackedRead switches tracking on up front: everything after is covered.
func trackedRead(w *Workspace, obs *ObsMap, pts []Pt) int {
	w.StartVisitTracking()
	n := 0
	for _, p := range pts {
		if obs.Blocked(p) {
			n++
		}
	}
	return n
}

// visitRead uses the unconditional stamp.
func visitRead(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	w.visit(g.Index(p))
	return obs.Blocked(p)
}

// noWorkspace has no workspace in scope: helpers outside the speculation
// protocol read obstacle state freely.
func noWorkspace(obs *ObsMap, p Pt) bool {
	return obs.Blocked(p)
}

// suppressed opts out with a justification.
func suppressed(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	blocked := obs.Blocked(p) //pacor:allow snapshotread diagnostic read outside the speculative protocol
	w.touch(g.Index(p))
	return blocked
}
