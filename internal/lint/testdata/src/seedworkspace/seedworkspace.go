// Package seedworkspace is a fixture for the wsaliasing analyzer over the
// cross-run cache-seeding shapes: a workspace warm-seeded from a captured
// parent run still carries the pooled-release obligation, a capture that
// stores the workspace into a seed transfers ownership, and a seed-hit
// fast path that returns early must not skip the release.
package seedworkspace

//pacor:pkgpath fixture/internal/search

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Cells mirrors the real grid API.
func (g Grid) Cells() int { return g.W * g.H }

// Workspace stands in for route.Workspace.
type Workspace struct{ cells int }

// Search stands in for a workspace-backed search.
func (w *Workspace) Search(from, to int) int { return from + to + w.cells }

// Replay stands in for serving a captured outcome through the workspace.
func (w *Workspace) Replay(round int) int { return round + w.cells }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace(g Grid) *Workspace { return &Workspace{cells: g.Cells()} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// Seed stands in for a captured negotiation transcript.
type Seed struct {
	rounds int
	ws     *Workspace
}

// usable mirrors the seed validity gate.
func (s *Seed) usable() bool { return s != nil && s.rounds > 0 }

// replayAll serves every captured round and releases on all paths:
// callers that hand their workspace to it have discharged the obligation.
func replayAll(ws *Workspace, s *Seed) int {
	n := 0
	for r := 0; r < s.rounds; r++ {
		n += ws.Replay(r)
	}
	ReleaseWorkspace(ws)
	return n
}

// seededBalanced is the blessed seeded-run shape: acquire, replay or
// search depending on the seed, release on the single exit.
func seededBalanced(g Grid, s *Seed) int {
	ws := AcquireWorkspace(g)
	n := 0
	if s.usable() {
		n = ws.Replay(0)
	} else {
		n = ws.Search(0, 1)
	}
	ReleaseWorkspace(ws)
	return n
}

// seedHitLeak returns early on the seed-hit fast path without releasing:
// every warm run shrinks the pool by one workspace.
func seedHitLeak(g Grid, s *Seed) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	if s.usable() {
		return ws.Replay(0)
	}
	n := ws.Search(0, 1)
	ReleaseWorkspace(ws)
	return n
}

// dischargedThroughReplay is clean interprocedurally: replayAll's summary
// releases on every path.
func dischargedThroughReplay(g Grid, s *Seed) int {
	ws := AcquireWorkspace(g)
	if !s.usable() {
		ReleaseWorkspace(ws)
		return 0
	}
	return replayAll(ws, s)
}

// captureUseAfterRelease re-reads the workspace after replayAll released
// it — the capture must deep-copy before the release, not after.
func captureUseAfterRelease(g Grid, s *Seed) int {
	ws := AcquireWorkspace(g)
	n := replayAll(ws, s)
	return n + ws.Replay(1) // want `workspace ws is used after ReleaseWorkspace`
}

// capturedIntoSeed escapes: the seed now owns the workspace and its
// obligations, so the local check stays silent.
func capturedIntoSeed(g Grid) *Seed {
	ws := AcquireWorkspace(g)
	return &Seed{rounds: 1, ws: ws}
}
