// Package interproc is a fixture for the interprocedural wsaliasing
// cases: obligations discharged or kept alive through helper calls,
// call-only closure bindings, deferred closures, and (mutual) recursion —
// exactly the patterns the intraprocedural engine either missed (silent
// escape) or could not prove clean.
package interproc

//pacor:pkgpath fixture/internal/search

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Cells mirrors the real grid API.
func (g Grid) Cells() int { return g.W * g.H }

// Workspace stands in for route.Workspace.
type Workspace struct{ cells int }

// Search stands in for a workspace-backed search.
func (w *Workspace) Search(from, to int) int { return from + to + w.cells }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace(g Grid) *Workspace { return &Workspace{cells: g.Cells()} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// finish releases on every path: callers that hand their workspace to it
// have discharged the obligation.
func finish(ws *Workspace) int {
	n := ws.Search(0, 1)
	ReleaseWorkspace(ws)
	return n
}

// finishMaybe releases on only one path: callers can neither keep nor
// drop the obligation, so handing a workspace to it is treated as an
// ownership transfer (no local report — the bug is inside finishMaybe's
// contract, not at the call site).
func finishMaybe(ws *Workspace, ok bool) int {
	if ok {
		ReleaseWorkspace(ws)
		return 0
	}
	return ws.Search(1, 2)
}

// observe only reads the workspace; the caller keeps the obligation.
func observe(ws *Workspace) int { return ws.Search(2, 3) }

// helperDischarges is clean: finish always releases.
func helperDischarges(g Grid) int {
	ws := AcquireWorkspace(g)
	return finish(ws)
}

// helperObservesLeak: the old engine wrote the observe call off as an
// escape; the summary says observe merely reads, so the leak is visible.
func helperObservesLeak(g Grid) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	return observe(ws)
}

// doubleThroughHelpers: both helpers release, so the second call releases
// an already-released workspace.
func doubleThroughHelpers(g Grid) int {
	ws := AcquireWorkspace(g)
	n := finish(ws)
	return n + finish(ws) // want `workspace ws may already be released`
}

// useAfterHelperRelease: finish released it, observe then touches freed
// pool memory.
func useAfterHelperRelease(g Grid) int {
	ws := AcquireWorkspace(g)
	n := finish(ws)
	return n + observe(ws) // want `workspace ws is used after ReleaseWorkspace`
}

// maybeTransfers stays silent: finishMaybe's partial release makes the
// call an ownership transfer.
func maybeTransfers(g Grid, ok bool) int {
	ws := AcquireWorkspace(g)
	return finishMaybe(ws, ok)
}

// closureDischarges is clean: cleanup is bound once, only called, and
// releases on its every path.
func closureDischarges(g Grid) int {
	ws := AcquireWorkspace(g)
	cleanup := func() { ReleaseWorkspace(ws) }
	n := ws.Search(3, 4)
	cleanup()
	return n
}

// closureNeverReleases: the bound closure only reads, so the obligation
// never moves — the old engine saw a capture and gave up.
func closureNeverReleases(g Grid) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	peek := func() int { return ws.Search(4, 5) }
	return peek()
}

// deferredClosureBranchLeak: the deferred closure releases on only one
// path, which is exactly as leaky as no defer on the dry branch.
func deferredClosureBranchLeak(g Grid, wet bool) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	defer func() {
		if wet {
			ReleaseWorkspace(ws)
		}
	}()
	return ws.Search(5, 6)
}

// deferredClosureClean releases unconditionally inside the deferred
// closure: covered on every path.
func deferredClosureClean(g Grid, fail bool) int {
	ws := AcquireWorkspace(g)
	defer func() { ReleaseWorkspace(ws) }()
	if fail {
		return -1
	}
	return ws.Search(6, 7)
}

// deferredHelperClean: defer finish(ws) discharges through the summary.
func deferredHelperClean(g Grid, fail bool) int {
	ws := AcquireWorkspace(g)
	defer finish(ws)
	if fail {
		return -1
	}
	return ws.Search(7, 8)
}

// releaseEven / releaseOdd are mutually recursive and both bottom out in
// a release: the SCC fixed point must converge on ReleasesAlways.
func releaseEven(ws *Workspace, n int) {
	if n <= 0 {
		ReleaseWorkspace(ws)
		return
	}
	releaseOdd(ws, n-1)
}

func releaseOdd(ws *Workspace, n int) {
	if n <= 0 {
		ReleaseWorkspace(ws)
		return
	}
	releaseEven(ws, n-1)
}

// mutualRecursionClean: the recursive pair releases on every path.
func mutualRecursionClean(g Grid, n int) {
	ws := AcquireWorkspace(g)
	releaseEven(ws, n)
}

// drainSelf is directly recursive and releases at the base case.
func drainSelf(ws *Workspace, n int) {
	if n <= 0 {
		ReleaseWorkspace(ws)
		return
	}
	drainSelf(ws, n-1)
}

// selfRecursionClean: direct recursion converges the same way.
func selfRecursionClean(g Grid, n int) {
	ws := AcquireWorkspace(g)
	drainSelf(ws, n)
}

// recurseNoRelease is recursive and never releases on the returning path.
func recurseNoRelease(ws *Workspace, n int) int {
	if n <= 0 {
		return 0
	}
	return recurseNoRelease(ws, n-1) + 1
}

// recursionLeak: the recursive helper's fixed point settles on "no
// release", so the caller still owes one.
func recursionLeak(g Grid, n int) int {
	ws := AcquireWorkspace(g) // want `workspace ws does not reach ReleaseWorkspace on every path`
	return recurseNoRelease(ws, n)
}
