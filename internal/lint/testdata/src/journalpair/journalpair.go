// Package journalpair is a fixture for the journalpair analyzer: every
// ObsMap.StartJournal must reach StopJournal on all paths, directly,
// through a defer, or through a callee whose summary stops it.
package journalpair

//pacor:pkgpath fixture/internal/route

// Pt stands in for geom.Pt.
type Pt struct{ X, Y int }

// ObsMap stands in for grid.ObsMap.
type ObsMap struct {
	bits    []bool
	journal []int
}

// Blocked mirrors the real obstacle query.
func (o *ObsMap) Blocked(p Pt) bool { return len(o.bits) > 0 && o.bits[0] }

// StartJournal mirrors the recording switch.
func (o *ObsMap) StartJournal() { o.journal = o.journal[:0] }

// StopJournal mirrors the recording stop.
func (o *ObsMap) StopJournal() { o.journal = nil }

// RewindJournal mirrors the rollback.
func (o *ObsMap) RewindJournal(n int) { o.journal = o.journal[:n] }

// JournalLen mirrors the mark query.
func (o *ObsMap) JournalLen() int { return len(o.journal) }

// route stands in for one routing attempt against the journal.
func route(o *ObsMap, p Pt) bool { return !o.Blocked(p) }

// paired is the blessed pattern: start, attempt, stop.
func paired(o *ObsMap, p Pt) bool {
	o.StartJournal()
	ok := route(o, p)
	o.StopJournal()
	return ok
}

// deferredStop covers every path, early returns included.
func deferredStop(o *ObsMap, p Pt, fail bool) bool {
	o.StartJournal()
	defer o.StopJournal()
	if fail {
		return false
	}
	return route(o, p)
}

// leakOnError stops only on the happy path: the error return leaves the
// journal recording every subsequent edit.
func leakOnError(o *ObsMap, p Pt) bool {
	o.StartJournal() // want `journal on o is started here but does not reach StopJournal on every path`
	if !route(o, p) {
		return false
	}
	o.StopJournal()
	return true
}

// neverStopped has no stop at all.
func neverStopped(o *ObsMap, p Pt) bool {
	o.StartJournal() // want `journal on o is started here but does not reach StopJournal on every path`
	return route(o, p)
}

// rewindThenLeak rolls back but forgets to stop: rewinding does not close
// the journal.
func rewindThenLeak(o *ObsMap, p Pt) bool {
	o.StartJournal() // want `journal on o is started here but does not reach StopJournal on every path`
	mark := o.JournalLen()
	if !route(o, p) {
		o.RewindJournal(mark)
		return false
	}
	o.StopJournal()
	return true
}

// commit stands in for a helper that always closes the journal.
func commit(o *ObsMap) { o.StopJournal() }

// stoppedByHelper is clean: commit's summary stops the journal on every
// path, so the obligation is discharged through the call.
func stoppedByHelper(o *ObsMap, p Pt) bool {
	o.StartJournal()
	ok := route(o, p)
	commit(o)
	return ok
}

// nestedMarks rewinds to an inner mark, then stops: still paired.
func nestedMarks(o *ObsMap, p Pt, q Pt) bool {
	o.StartJournal()
	outer := o.JournalLen()
	ok := route(o, p)
	inner := o.JournalLen()
	if !route(o, q) {
		o.RewindJournal(inner)
	}
	if !ok {
		o.RewindJournal(outer)
	}
	o.StopJournal()
	return ok
}

// Request stands in for negotiation state that owns the journal after an
// escape.
type Request struct{ obs *ObsMap }

// escapesIntoRequest transfers the obligation with the value: the local
// check stays silent.
func escapesIntoRequest(o *ObsMap) *Request {
	o.StartJournal()
	return &Request{obs: o}
}
