// Package maporder is a fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"os"
	"sort"
)

// leakAppend appends map keys and never sorts: order reaches the caller.
func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map range without a later sort`
	}
	return keys
}

// sortedAppend is the blessed pattern: collect, then sort.
func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceAppend sorts through sort.Slice, also fine.
func sortSliceAppend(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// leakPrint writes inside the loop: emission order is random.
func leakPrint(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v) // want `Fprintf inside map range emits in iteration order`
	}
}

// innerAppend appends to a slice declared inside the loop: no leak.
func innerAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// sliceRange ranges over a slice: ordered, nothing to report.
func sliceRange(s []string, ch chan string) {
	for _, v := range s {
		ch <- v
	}
}

// suppressed demonstrates a justified opt-out.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //pacor:allow maporder order randomized downstream anyway
	}
	return keys
}
