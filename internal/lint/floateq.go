package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq guards numeric stability in the LP/ILP/geometry/DME
// kernels: after arithmetic, two float64 values that are mathematically
// equal rarely compare ==, so direct ==/!= hides rank-deficiency in the
// simplex tableau and off-by-ulp merging segments in DME. Compare against
// a tolerance instead (math.Abs(a-b) <= eps). Exact comparisons that are
// genuinely intended — sentinel infinities, checked copies — get a
// justified //pacor:allow floateq.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no direct ==/!= on float operands in the numeric packages; use tolerance comparison",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if !pathHasSuffix(p.PkgPath, floatPackages...) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			// Constant folding: two compile-time constants compare exactly.
			if isConstExpr(p, be.X) && isConstExpr(p, be.Y) {
				return true
			}
			// Comparing against an explicit infinity sentinel is exact by
			// construction (IEEE 754 infinities survive arithmetic).
			if isInfCall(be.X) || isInfCall(be.Y) {
				return true
			}
			p.Reportf(be.Pos(), "float %s comparison; use a tolerance (math.Abs(a-b) <= eps)", be.Op)
			return true
		})
	}
}

// isFloat reports whether t is a (possibly untyped) floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether e has a compile-time constant value.
func isConstExpr(p *Pass, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Inf" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "math"
}
