package bench

import (
	"testing"

	"repro/internal/cluster"
)

// TestTable1Parameters asserts the generated designs reproduce Table 1's
// published parameters exactly.
func TestTable1Parameters(t *testing.T) {
	want := map[string][4]int{ // W*H encoded as [W, H, valves... ]
		"Chip1": {179, 413, 176, 1800},
		"Chip2": {231, 265, 56, 1863},
		"S1":    {12, 12, 5, 9},
		"S2":    {22, 22, 10, 54},
		"S3":    {52, 52, 15, 0},
		"S4":    {72, 72, 20, 27},
		"S5":    {152, 152, 40, 135},
	}
	pins := map[string]int{
		"Chip1": 556, "Chip2": 495, "S1": 14, "S2": 40, "S3": 93, "S4": 139, "S5": 306,
	}
	for _, name := range Names() {
		d, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w := want[name]
		if d.W != w[0] || d.H != w[1] {
			t.Errorf("%s: size %dx%d, want %dx%d", name, d.W, d.H, w[0], w[1])
		}
		if len(d.Valves) != w[2] {
			t.Errorf("%s: %d valves, want %d", name, len(d.Valves), w[2])
		}
		if len(d.Obstacles) != w[3] {
			t.Errorf("%s: %d obstacles, want %d", name, len(d.Obstacles), w[3])
		}
		if len(d.Pins) != pins[name] {
			t.Errorf("%s: %d pins, want %d", name, len(d.Pins), pins[name])
		}
		if d.Delta != 1 {
			t.Errorf("%s: delta %d, want 1 (paper's setting)", name, d.Delta)
		}
	}
}

// TestTable2ClusterCounts asserts the multi-valve cluster counts match
// Table 2's "#Clusters" column after the clustering stage.
func TestTable2ClusterCounts(t *testing.T) {
	want := map[string]int{
		"Chip1": 40, "Chip2": 22, "S1": 2, "S2": 2, "S3": 5, "S4": 7, "S5": 13,
	}
	for _, name := range Names() {
		d, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(d.LMClusters); got != want[name] {
			t.Errorf("%s: %d LM clusters, want %d", name, got, want[name])
		}
		part := cluster.Partition(d)
		if got := part.MultiValve(); got != want[name] {
			t.Errorf("%s: clustering yields %d multi-valve clusters, want %d",
				name, got, want[name])
		}
		if !cluster.Verify(d, part) {
			t.Errorf("%s: invalid partition", name)
		}
	}
}

// TestChip2PairsOnly checks the paper's remark that Chip2 has only 2-valve
// clusters.
func TestChip2PairsOnly(t *testing.T) {
	d, err := Generate("Chip2")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range d.LMClusters {
		if len(c) != 2 {
			t.Errorf("Chip2 cluster %d has %d valves, want 2", i, len(c))
		}
	}
}

// TestDeterministic verifies generation is reproducible.
func TestDeterministic(t *testing.T) {
	a, err := Generate("S3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("S3")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Valves) != len(b.Valves) {
		t.Fatal("valve count differs")
	}
	for i := range a.Valves {
		if a.Valves[i].Pos != b.Valves[i].Pos || a.Valves[i].Seq.String() != b.Valves[i].Seq.String() {
			t.Fatalf("valve %d differs between runs", i)
		}
	}
}

// TestClusterCompatibility: LM cluster members must be pairwise compatible,
// and valves of different clusters incompatible (unique codes).
func TestClusterCompatibility(t *testing.T) {
	d, err := Generate("S5")
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range d.LMClusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !d.Valves[c[i]].Compatible(d.Valves[c[j]]) {
					t.Errorf("cluster %d: valves %d,%d incompatible", ci, c[i], c[j])
				}
			}
		}
	}
	// Cross-cluster: first member of each cluster pairwise incompatible.
	for a := 0; a < len(d.LMClusters); a++ {
		for b := a + 1; b < len(d.LMClusters); b++ {
			va, vb := d.LMClusters[a][0], d.LMClusters[b][0]
			if d.Valves[va].Compatible(d.Valves[vb]) {
				t.Errorf("clusters %d and %d compatible (codes collide)", a, b)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown design must error")
	}
}

func TestGenerateSpecErrors(t *testing.T) {
	if _, err := GenerateSpec(Spec{Name: "x", W: 10, H: 10, Valves: 1,
		ClusterSizes: []int{2}, Pins: 4, Seed: 1}); err == nil {
		t.Error("cluster larger than valve count must error")
	}
	if _, err := GenerateSpec(Spec{Name: "x", W: 5, H: 5, Valves: 1,
		Pins: 500, Seed: 1}); err == nil {
		t.Error("too many pins must error")
	}
	if _, err := GenerateSpec(Spec{Name: "x", W: 10, H: 10, Valves: 3,
		ClusterSizes: []int{1}, Pins: 4, Seed: 1}); err == nil {
		t.Error("cluster size 1 must error")
	}
}
