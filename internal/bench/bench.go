// Package bench provides deterministic generators for the paper's seven
// benchmark designs (Table 1). The paper's two real biochips (Chip1, Chip2)
// were never published, so synthetic stand-ins are generated with exactly
// the published parameters — grid size, valve count, candidate control pin
// count, obstructed cell count — and Table 2's cluster structure (Chip2
// carries only 2-valve clusters, as the paper notes). The synthesized
// testcases S1-S5 are regenerated the same way. Generation is fully
// deterministic (fixed seed per design) so every experiment is repeatable.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/valve"
)

// Spec describes one benchmark design: the Table 1 row plus the multi-valve
// cluster structure implied by Table 2.
type Spec struct {
	Name   string
	W, H   int
	Valves int
	Pins   int
	Obs    int
	// ClusterSizes lists the sizes of the length-matching clusters
	// (len(ClusterSizes) is Table 2's "#Clusters"); remaining valves are
	// singletons.
	ClusterSizes []int
	// Window is the placement radius for a cluster's valves.
	Window int
	Seed   int64
}

// Specs are the seven benchmarks of Table 1.
var Specs = []Spec{
	{Name: "Chip1", W: 179, H: 413, Valves: 176, Pins: 556, Obs: 1800,
		ClusterSizes: sizes(12, 4, 12, 3, 16, 2), Window: 22, Seed: 1001},
	{Name: "Chip2", W: 231, H: 265, Valves: 56, Pins: 495, Obs: 1863,
		ClusterSizes: sizes(22, 2), Window: 18, Seed: 1002},
	{Name: "S1", W: 12, H: 12, Valves: 5, Pins: 14, Obs: 9,
		ClusterSizes: sizes(2, 2), Window: 4, Seed: 1011},
	{Name: "S2", W: 22, H: 22, Valves: 10, Pins: 40, Obs: 54,
		ClusterSizes: sizes(2, 3), Window: 6, Seed: 1012},
	{Name: "S3", W: 52, H: 52, Valves: 15, Pins: 93, Obs: 0,
		ClusterSizes: sizes(1, 3, 4, 2), Window: 10, Seed: 1013},
	{Name: "S4", W: 72, H: 72, Valves: 20, Pins: 139, Obs: 27,
		ClusterSizes: sizes(1, 4, 2, 3, 4, 2), Window: 12, Seed: 1014},
	{Name: "S5", W: 152, H: 152, Valves: 40, Pins: 306, Obs: 135,
		ClusterSizes: sizes(2, 4, 4, 3, 7, 2), Window: 16, Seed: 1015},
}

// sizes expands (count, size) pairs: sizes(2,4, 1,3) = [4,4,3].
func sizes(pairs ...int) []int {
	var out []int
	for i := 0; i+1 < len(pairs); i += 2 {
		for k := 0; k < pairs[i]; k++ {
			out = append(out, pairs[i+1])
		}
	}
	return out
}

// Names lists the benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// Known reports whether name is a generatable design (a Table 1 spec or
// the structured "ChipM" composite) — a cheap pre-flight check for sweeps
// that fan jobs out before generating anything.
func Known(name string) bool {
	if name == "ChipM" || name == "ChipXL" {
		return true
	}
	for _, s := range Specs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Generate builds the named benchmark design. Beyond the seven Table 1
// names, "ChipM" builds the structured multiplexed-biochip composite.
func Generate(name string) (*valve.Design, error) {
	if name == "ChipM" {
		return ChipM()
	}
	if name == "ChipXL" {
		return GenerateSpec(ChipXLSpec())
	}
	for _, s := range Specs {
		if s.Name == name {
			return GenerateSpec(s)
		}
	}
	return nil, fmt.Errorf("bench: unknown design %q", name)
}

// GenerateSpec builds a design from an arbitrary spec (exported so tests and
// examples can create custom workloads).
func GenerateSpec(s Spec) (*valve.Design, error) {
	total := 0
	for _, sz := range s.ClusterSizes {
		if sz < 2 {
			return nil, fmt.Errorf("bench: cluster size %d < 2", sz)
		}
		total += sz
	}
	if total > s.Valves {
		return nil, fmt.Errorf("bench: cluster sizes need %d valves, spec has %d", total, s.Valves)
	}
	perimeter := 2*(s.W+s.H) - 4
	if s.Pins > perimeter {
		return nil, fmt.Errorf("bench: %d pins exceed perimeter %d", s.Pins, perimeter)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	d := &valve.Design{Name: s.Name, W: s.W, H: s.H, Delta: 1}

	occupied := make(map[geom.Pt]bool)
	in := func(p geom.Pt, margin int) bool {
		return p.X >= margin && p.X < s.W-margin && p.Y >= margin && p.Y < s.H-margin
	}

	// Obstacles: small rectangular blobs trimmed to the exact cell count,
	// kept off the two-cell boundary ring so pins stay reachable.
	obsCells := make([]geom.Pt, 0, s.Obs)
	for len(obsCells) < s.Obs {
		w := 1 + rng.Intn(4)
		h := 1 + rng.Intn(4)
		x := 2 + rng.Intn(maxInt(1, s.W-4-w))
		y := 2 + rng.Intn(maxInt(1, s.H-4-h))
		for dy := 0; dy < h && len(obsCells) < s.Obs; dy++ {
			for dx := 0; dx < w && len(obsCells) < s.Obs; dx++ {
				p := geom.Pt{X: x + dx, Y: y + dy}
				if !occupied[p] && in(p, 2) {
					occupied[p] = true
					obsCells = append(obsCells, p)
				}
			}
		}
	}
	d.Obstacles = obsCells

	// Valve placement helper: free cell with clearance from everything
	// placed so far (obstacles and valves).
	clear := func(p geom.Pt, spacing int) bool {
		if !in(p, 2) {
			return false
		}
		for dx := -spacing; dx <= spacing; dx++ {
			for dy := -spacing; dy <= spacing; dy++ {
				if geom.Abs(dx)+geom.Abs(dy) <= spacing &&
					occupied[geom.Pt{X: p.X + dx, Y: p.Y + dy}] {
					return false
				}
			}
		}
		return true
	}
	place := func(spacing int, inWindow *geom.Rect) (geom.Pt, error) {
		for try := 0; try < 20000; try++ {
			var p geom.Pt
			if inWindow != nil {
				p = geom.Pt{
					X: inWindow.MinX + rng.Intn(maxInt(1, inWindow.Width())),
					Y: inWindow.MinY + rng.Intn(maxInt(1, inWindow.Height())),
				}
			} else {
				p = geom.Pt{X: rng.Intn(s.W), Y: rng.Intn(s.H)}
			}
			if clear(p, spacing) {
				occupied[p] = true
				return p, nil
			}
		}
		return geom.Pt{}, fmt.Errorf("bench: cannot place valve (design %s too dense)", s.Name)
	}

	// Cluster valves: members near a shared center, with odd diagonal-ish
	// offsets so DME merging segments are non-degenerate.
	nClusters := len(s.ClusterSizes)
	singles := s.Valves - total
	codeBits := codeLen(nClusters + singles)
	seqLen := codeBits + 2 // two trailing don't-care-able padding steps

	// Cluster centers keep a minimum separation so cluster trees do not pile
	// into one pocket and strangle each other's escape corridors (real
	// biochips spread their functional units the same way) — except that
	// every third cluster is placed deliberately adjacent to its
	// predecessor, creating the overlapping-candidate-tree contention that
	// the paper's MWCP selection stage (Section 4.2) is designed to resolve.
	minCenterDist := s.Window + s.Window/2
	var centers []geom.Pt

	valveID := 0
	codeIdx := 0
	for ci, sz := range s.ClusterSizes {
		var cluster []int
		interleave := ci%2 == 1 && len(centers) > 0
		for try := 0; ; try++ {
			if try >= 2000 {
				return nil, fmt.Errorf("bench: cannot place cluster %d in %s", ci, s.Name)
			}
			var center geom.Pt
			if interleave && try < 1000 {
				prev := centers[len(centers)-1]
				center = geom.Pt{
					X: prev.X - s.Window/2 + rng.Intn(s.Window+1),
					Y: prev.Y - s.Window/2 + rng.Intn(s.Window+1),
				}
				if center.X < 3 || center.X >= s.W-3 || center.Y < 3 || center.Y >= s.H-3 {
					continue
				}
			} else {
				center = geom.Pt{
					X: 3 + rng.Intn(maxInt(1, s.W-6)),
					Y: 3 + rng.Intn(maxInt(1, s.H-6)),
				}
				if try < 1500 { // relax the spacing only as a last resort
					tooClose := false
					for _, c := range centers {
						if geom.Dist(c, center) < minCenterDist {
							tooClose = true
							break
						}
					}
					if tooClose {
						continue
					}
				}
			}
			win := geom.Rect{
				MinX: maxInt(2, center.X-s.Window), MinY: maxInt(2, center.Y-s.Window),
				MaxX: minInt(s.W-3, center.X+s.Window), MaxY: minInt(s.H-3, center.Y+s.Window),
			}
			pts := make([]geom.Pt, 0, sz)
			ok := true
			for k := 0; k < sz; k++ {
				p, err := place(3, &win)
				if err != nil {
					ok = false
					break
				}
				pts = append(pts, p)
			}
			if !ok {
				for _, p := range pts {
					delete(occupied, p)
				}
				continue
			}
			centers = append(centers, center)
			base := codeSeq(codeIdx, codeBits, seqLen)
			for k, p := range pts {
				sq := append(valve.Seq(nil), base...)
				// Exercise don't-care merging on padding steps.
				if k%2 == 1 {
					sq[codeBits+k%2] = valve.DontC
				}
				d.Valves = append(d.Valves, valve.Valve{ID: valveID, Pos: p, Seq: sq})
				cluster = append(cluster, valveID)
				valveID++
			}
			break
		}
		codeIdx++
		d.LMClusters = append(d.LMClusters, cluster)
	}
	// Singleton valves, each with a unique code.
	for k := 0; k < singles; k++ {
		p, err := place(3, nil)
		if err != nil {
			return nil, err
		}
		d.Valves = append(d.Valves, valve.Valve{
			ID: valveID, Pos: p, Seq: codeSeq(codeIdx, codeBits, seqLen)})
		valveID++
		codeIdx++
	}

	// Pins: evenly spaced along the perimeter.
	d.Pins = perimeterPins(s.W, s.H, s.Pins)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated %s invalid: %w", s.Name, err)
	}
	return d, nil
}

// codeLen returns the number of bits to give n entities distinct codes.
func codeLen(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// codeSeq encodes idx as a 0/1 activation sequence of seqLen steps (the
// first bits distinct per cluster, padding zeros after).
func codeSeq(idx, bits, seqLen int) valve.Seq {
	sq := make(valve.Seq, seqLen)
	for i := 0; i < seqLen; i++ {
		sq[i] = valve.Open
	}
	for b := 0; b < bits; b++ {
		if idx&(1<<b) != 0 {
			sq[b] = valve.Closed
		}
	}
	return sq
}

// perimeterPins returns n pins evenly spread over the chip boundary.
func perimeterPins(w, h, n int) []geom.Pt {
	var ring []geom.Pt
	for x := 0; x < w; x++ {
		ring = append(ring, geom.Pt{X: x, Y: 0})
	}
	for y := 1; y < h; y++ {
		ring = append(ring, geom.Pt{X: w - 1, Y: y})
	}
	for x := w - 2; x >= 0; x-- {
		ring = append(ring, geom.Pt{X: x, Y: h - 1})
	}
	for y := h - 2; y >= 1; y-- {
		ring = append(ring, geom.Pt{X: 0, Y: y})
	}
	pins := make([]geom.Pt, 0, n)
	for i := 0; i < n; i++ {
		pins = append(pins, ring[i*len(ring)/n])
	}
	return pins
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// StressSpec is a beyond-the-paper scalability workload: a chip with more
// and larger length-matching clusters than any Table 1 design, used by the
// scale tests and benchmarks to demonstrate headroom past the published
// sizes.
func StressSpec() Spec {
	return Spec{
		Name: "Stress", W: 256, H: 256, Valves: 96, Pins: 400, Obs: 500,
		ClusterSizes: sizes(6, 4, 8, 3, 10, 2), Window: 18, Seed: 9001,
	}
}

// XLSpec parameterizes the ChipXL scalability family: a size×size grid with
// the requested total valve count and obstacle density (fraction of cells).
// Roughly three quarters of the valves form length-matching clusters in a
// 4/3/2-size mix, the rest are singletons. The seed derives from the knobs,
// so equal parameters always regenerate the identical design; distinct
// parameters get distinct (but still deterministic) layouts.
func XLSpec(size, valves int, obsDensity float64) Spec {
	clustered := valves * 3 / 4
	c4 := clustered / 12 // a third of the clustered valves in 4-clusters
	c3 := clustered / 9  // a third in 3-clusters
	c2 := (clustered - 4*c4 - 3*c3) / 2
	perimeter := 2*(size+size) - 4
	pins := valves + valves/4
	if pins > perimeter {
		pins = perimeter
	}
	return Spec{
		Name:   fmt.Sprintf("ChipXL-%d-%d", size, valves),
		W:      size,
		H:      size,
		Valves: valves,
		Pins:   pins,
		Obs:    int(obsDensity * float64(size) * float64(size)),
		// Window 14 keeps cluster footprints compact enough that the
		// spacing heuristic (minCenterDist = 1.5·Window) still finds
		// hundreds of non-strangling center slots on dense instances.
		ClusterSizes: sizes(c4, 4, c3, 3, c2, 2),
		Window:       14,
		Seed:         90000 + 31*int64(size) + 17*int64(valves) + int64(obsDensity*1e6),
	}
}

// ChipXLSpec is the canonical ChipXL preset used by the benchmarks and the
// "ChipXL" design name: a 1000×1000 grid, 2400 valves (~750 LM clusters),
// 2% obstacle density — an order of magnitude past Table 1's largest chip.
func ChipXLSpec() Spec {
	s := XLSpec(1000, 2400, 0.02)
	s.Name = "ChipXL"
	return s
}
