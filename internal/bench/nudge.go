package bench

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/valve"
)

// Nudge returns a deep copy of d with valve valveID moved by (dx, dy) — the
// canonical interactive-editing step (a designer drags one valve and
// re-routes) that the cross-run design cache turns into a near-hit. The move
// must land on-grid, off every obstacle, and off every other valve; the
// design is otherwise untouched, so the child differs from the parent by
// exactly two cells of geometry.
func Nudge(d *valve.Design, valveID, dx, dy int) (*valve.Design, error) {
	if valveID < 0 || valveID >= len(d.Valves) {
		return nil, fmt.Errorf("bench: nudge of unknown valve %d (design has %d)", valveID, len(d.Valves))
	}
	to := d.Valves[valveID].Pos.Add(geom.Pt{X: dx, Y: dy})
	if to.X < 0 || to.X >= d.W || to.Y < 0 || to.Y >= d.H {
		return nil, fmt.Errorf("bench: nudge moves valve %d off-grid to %v", valveID, to)
	}
	for _, o := range d.Obstacles {
		if o == to {
			return nil, fmt.Errorf("bench: nudge moves valve %d onto obstacle %v", valveID, to)
		}
	}
	for i := range d.Valves {
		if i != valveID && d.Valves[i].Pos == to {
			return nil, fmt.Errorf("bench: nudge moves valve %d onto valve %d at %v", valveID, i, to)
		}
	}

	nd := &valve.Design{
		Name:       d.Name + "-nudged",
		W:          d.W,
		H:          d.H,
		Delta:      d.Delta,
		Valves:     make([]valve.Valve, len(d.Valves)),
		Obstacles:  append([]geom.Pt(nil), d.Obstacles...),
		Pins:       append([]geom.Pt(nil), d.Pins...),
		LMClusters: make([][]int, len(d.LMClusters)),
	}
	for i, v := range d.Valves {
		nd.Valves[i] = valve.Valve{ID: v.ID, Pos: v.Pos, Seq: append(valve.Seq(nil), v.Seq...)}
	}
	nd.Valves[valveID].Pos = to
	for i, c := range d.LMClusters {
		nd.LMClusters[i] = append([]int(nil), c...)
	}
	if err := nd.Validate(); err != nil {
		return nil, fmt.Errorf("bench: nudged design invalid: %w", err)
	}
	return nd, nil
}

// NudgeAny nudges the first valve that admits a unit move, scanning valves
// in ID order and the four directions in deterministic order. It is the
// convenience form for benchmarks and CI, where *which* valve moves is
// immaterial but determinism is not.
func NudgeAny(d *valve.Design) (*valve.Design, error) {
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for id := range d.Valves {
		for _, dir := range dirs {
			if nd, err := Nudge(d, id, dir[0], dir[1]); err == nil {
				return nd, nil
			}
		}
	}
	return nil, fmt.Errorf("bench: no valve of %s admits a unit nudge", d.Name)
}
