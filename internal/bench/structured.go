package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/valve"
)

// UnitKind identifies a functional-unit template, the building blocks real
// mVLSI chips are composed of (Figure 1 of the paper; Thorsen et al.,
// Unger et al.). Random scatter (GenerateSpec) reproduces Table 1's
// statistics; structured composition reproduces how real control layers
// actually look: valves in regular banks with per-unit synchronization.
type UnitKind int

// The unit templates.
const (
	// UnitMuxRank is one rank of a binary multiplexer: a row of valves that
	// pinch alternating flow channels and must switch in lockstep (LM).
	UnitMuxRank UnitKind = iota
	// UnitMixer is a rotary mixer: three pump valves around a ring driven in
	// a rotating phase pattern (not synchronized — no LM).
	UnitMixer
	// UnitChamberPair is a reaction chamber's inlet/outlet valve pair,
	// opened together (LM).
	UnitChamberPair
	// UnitPumpRow is a 3-valve peristaltic pump (not LM).
	UnitPumpRow
)

func (k UnitKind) String() string {
	switch k {
	case UnitMuxRank:
		return "mux-rank"
	case UnitMixer:
		return "mixer"
	case UnitChamberPair:
		return "chamber-pair"
	case UnitPumpRow:
		return "pump-row"
	}
	return fmt.Sprintf("UnitKind(%d)", int(k))
}

// UnitPlacement positions one unit instance on the chip.
type UnitPlacement struct {
	Kind UnitKind
	At   geom.Pt // anchor cell (top-left of the unit's footprint)
	// Size scales the unit where meaningful (valves in a mux rank; ignored
	// for fixed-size templates). Zero means the template default.
	Size int
}

// unitValves returns the valve offsets of the template and whether the unit
// carries the length-matching constraint. Offsets use slight diagonal
// staggering so DME merging segments are non-degenerate.
func unitValves(kind UnitKind, size int) (offsets []geom.Pt, lm bool) {
	switch kind {
	case UnitMuxRank:
		if size <= 0 {
			size = 4
		}
		for i := 0; i < size; i++ {
			offsets = append(offsets, geom.Pt{X: i * 6, Y: (i % 2) * 1})
		}
		return offsets, true
	case UnitMixer:
		return []geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 2}, {X: 2, Y: 5}}, false
	case UnitChamberPair:
		return []geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 3}}, true
	case UnitPumpRow:
		return []geom.Pt{{X: 0, Y: 0}, {X: 4, Y: 1}, {X: 8, Y: 0}}, false
	}
	return nil, false
}

// StructuredSpec describes a chip composed of functional units.
type StructuredSpec struct {
	Name  string
	W, H  int
	Units []UnitPlacement
	Pins  int
	// Obs adds this many obstructed cells of flow-layer punch-through
	// (placed deterministically away from units).
	Obs  int
	Seed int64
}

// GenerateStructured builds a design from unit templates: each unit's
// valves share one activation code (with per-unit uniqueness across the
// chip); LM units become length-matching clusters.
func GenerateStructured(s StructuredSpec) (*valve.Design, error) {
	if len(s.Units) == 0 {
		return nil, fmt.Errorf("bench: structured design %q has no units", s.Name)
	}
	perimeter := 2*(s.W+s.H) - 4
	if s.Pins > perimeter {
		return nil, fmt.Errorf("bench: %d pins exceed perimeter %d", s.Pins, perimeter)
	}
	d := &valve.Design{Name: s.Name, W: s.W, H: s.H, Delta: 1}
	rng := rand.New(rand.NewSource(s.Seed))

	codeBits := codeLen(len(s.Units))
	seqLen := codeBits + 2
	occupied := map[geom.Pt]bool{}

	valveID := 0
	for ui, u := range s.Units {
		offsets, lm := unitValves(u.Kind, u.Size)
		if offsets == nil {
			return nil, fmt.Errorf("bench: unit %d has unknown kind %v", ui, u.Kind)
		}
		base := codeSeq(ui, codeBits, seqLen)
		var cluster []int
		for k, off := range offsets {
			p := u.At.Add(off)
			if p.X < 2 || p.X >= s.W-2 || p.Y < 2 || p.Y >= s.H-2 {
				return nil, fmt.Errorf("bench: unit %d (%v at %v) valve %v off the usable area",
					ui, u.Kind, u.At, p)
			}
			if occupied[p] {
				return nil, fmt.Errorf("bench: unit %d overlaps an earlier unit at %v", ui, p)
			}
			occupied[p] = true
			sq := append(valve.Seq(nil), base...)
			if !lm {
				// Non-synchronized units drive members differently: rotate a
				// closed phase through the padding positions so members stay
				// compatible with nobody else but are NOT pairwise identical
				// requirements... they must still be pairwise compatible to
				// share a pin, so encode the rotation in don't-cares.
				sq[codeBits+(k%2)] = valve.DontC
			}
			d.Valves = append(d.Valves, valve.Valve{ID: valveID, Pos: p, Seq: sq})
			cluster = append(cluster, valveID)
			valveID++
		}
		if lm && len(cluster) >= 2 {
			d.LMClusters = append(d.LMClusters, cluster)
		}
	}
	// Obstacles: deterministic scatter with clearance 2 from every valve.
	clearOf := func(p geom.Pt) bool {
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				if geom.Abs(dx)+geom.Abs(dy) <= 2 && occupied[geom.Pt{X: p.X + dx, Y: p.Y + dy}] {
					return false
				}
			}
		}
		return true
	}
	for placed, tries := 0, 0; placed < s.Obs && tries < 50000; tries++ {
		p := geom.Pt{X: 2 + rng.Intn(s.W-4), Y: 2 + rng.Intn(s.H-4)}
		if clearOf(p) {
			occupied[p] = true
			d.Obstacles = append(d.Obstacles, p)
			placed++
		}
	}
	if len(d.Obstacles) < s.Obs {
		return nil, fmt.Errorf("bench: could not place %d obstacles", s.Obs)
	}
	d.Pins = perimeterPins(s.W, s.H, s.Pins)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: structured %s invalid: %w", s.Name, err)
	}
	return d, nil
}

// ChipM returns a ready-made structured composite in the style of a real
// multiplexed biochip: two 8-wide multiplexer banks (3 ranks each), four
// mixers, four reaction chambers, and two pumps — 48 valves, 10 LM
// clusters.
func ChipM() (*valve.Design, error) {
	var units []UnitPlacement
	// Two mux banks, 3 ranks of 4 each, top of the chip.
	for bank := 0; bank < 2; bank++ {
		for rank := 0; rank < 3; rank++ {
			units = append(units, UnitPlacement{
				Kind: UnitMuxRank,
				At:   geom.Pt{X: 8 + bank*48, Y: 6 + rank*8},
				Size: 4,
			})
		}
	}
	// Mixers mid-chip.
	for i := 0; i < 4; i++ {
		units = append(units, UnitPlacement{
			Kind: UnitMixer, At: geom.Pt{X: 10 + i*22, Y: 40},
		})
	}
	// Chamber pairs below.
	for i := 0; i < 4; i++ {
		units = append(units, UnitPlacement{
			Kind: UnitChamberPair, At: geom.Pt{X: 12 + i*22, Y: 58},
		})
	}
	// Pumps at the bottom.
	for i := 0; i < 2; i++ {
		units = append(units, UnitPlacement{
			Kind: UnitPumpRow, At: geom.Pt{X: 24 + i*40, Y: 74},
		})
	}
	return GenerateStructured(StructuredSpec{
		Name: "ChipM", W: 100, H: 88, Units: units, Pins: 220, Obs: 120, Seed: 4711,
	})
}
