package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/pacor"
)

func TestChipMStructure(t *testing.T) {
	d, err := ChipM()
	if err != nil {
		t.Fatal(err)
	}
	// 6 mux ranks (4 valves) + 4 mixers (3) + 4 chambers (2) + 2 pumps (3).
	if got, want := len(d.Valves), 6*4+4*3+4*2+2*3; got != want {
		t.Errorf("valves = %d, want %d", got, want)
	}
	// LM clusters: mux ranks + chamber pairs.
	if got, want := len(d.LMClusters), 6+4; got != want {
		t.Errorf("LM clusters = %d, want %d", got, want)
	}
	if len(d.Obstacles) != 120 || len(d.Pins) != 220 {
		t.Errorf("obstacles %d pins %d", len(d.Obstacles), len(d.Pins))
	}
	part := cluster.Partition(d)
	if !cluster.Verify(d, part) {
		t.Error("invalid partition")
	}
}

func TestChipMRoutes(t *testing.T) {
	d, err := ChipM()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1 {
		t.Errorf("completion %.3f", res.CompletionRate())
	}
	// Structured banks route cleanly: expect most LM clusters matched.
	if res.MatchedClusters < 8 {
		t.Errorf("matched %d/10, want >= 8 on a regular layout", res.MatchedClusters)
	}
	t.Logf("ChipM: %d/%d matched, total length %d", res.MatchedClusters,
		res.MultiClusters, res.TotalLen)
}

func TestGenerateStructuredErrors(t *testing.T) {
	cases := []struct {
		name string
		spec StructuredSpec
	}{
		{"no units", StructuredSpec{Name: "x", W: 20, H: 20, Pins: 10}},
		{"off chip", StructuredSpec{Name: "x", W: 20, H: 20, Pins: 10,
			Units: []UnitPlacement{{Kind: UnitMuxRank, At: geom.Pt{X: 15, Y: 5}}}}},
		{"overlap", StructuredSpec{Name: "x", W: 40, H: 40, Pins: 10,
			Units: []UnitPlacement{
				{Kind: UnitMixer, At: geom.Pt{X: 10, Y: 10}},
				{Kind: UnitMixer, At: geom.Pt{X: 10, Y: 10}},
			}}},
		{"too many pins", StructuredSpec{Name: "x", W: 10, H: 10, Pins: 500,
			Units: []UnitPlacement{{Kind: UnitMixer, At: geom.Pt{X: 3, Y: 3}}}}},
	}
	for _, c := range cases {
		if _, err := GenerateStructured(c.spec); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestUnitKindString(t *testing.T) {
	for _, k := range []UnitKind{UnitMuxRank, UnitMixer, UnitChamberPair, UnitPumpRow} {
		if k.String() == "" || k.String()[0] == 'U' {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if UnitKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestStructuredDeterministic(t *testing.T) {
	a, err := ChipM()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChipM()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Valves {
		if a.Valves[i].Pos != b.Valves[i].Pos {
			t.Fatal("structured generation not deterministic")
		}
	}
	for i := range a.Obstacles {
		if a.Obstacles[i] != b.Obstacles[i] {
			t.Fatal("obstacles not deterministic")
		}
	}
}
