package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
)

var (
	runAllOnce  sync.Once
	runAllCache map[string]map[pacor.Mode]*pacor.Result
	runAllErr   error
)

// runAll routes every benchmark with every mode and returns results keyed by
// design then mode, computing them once per test binary. Chip1/Chip2 are
// skipped in -short mode.
func runAll(t *testing.T) map[string]map[pacor.Mode]*pacor.Result {
	t.Helper()
	runAllOnce.Do(func() {
		runAllCache, runAllErr = computeAll()
	})
	if runAllErr != nil {
		t.Fatal(runAllErr)
	}
	return runAllCache
}

func computeAll() (map[string]map[pacor.Mode]*pacor.Result, error) {
	out := map[string]map[pacor.Mode]*pacor.Result{}
	for _, name := range bench.Names() {
		if testing.Short() && (name == "Chip1" || name == "Chip2") {
			continue
		}
		d, err := bench.Generate(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		out[name] = map[pacor.Mode]*pacor.Result{}
		for _, mode := range []pacor.Mode{
			pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR,
		} {
			params := pacor.DefaultParams()
			params.Mode = mode
			res, err := pacor.Route(d, params)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", name, mode, err)
			}
			if err := pacor.Verify(d, res); err != nil {
				return nil, fmt.Errorf("%s/%s: design rules violated: %v", name, mode, err)
			}
			out[name][mode] = res
		}
	}
	return out, nil
}

// TestTable2Completion reproduces the paper's headline claim: 100% routing
// completion on every design with every flow variant.
func TestTable2Completion(t *testing.T) {
	for name, modes := range runAll(t) {
		for mode, res := range modes {
			if res.CompletionRate() != 1.0 {
				t.Errorf("%s/%s: completion %.3f, want 1.0 (%d/%d valves)",
					name, mode, res.CompletionRate(), res.RoutedValves, res.TotalValves)
			}
		}
	}
}

// TestTable2Shape reproduces the comparative shape of Table 2: averaged over
// the designs, the full PACOR flow matches at least as many clusters as both
// self-comparison baselines, and strictly more than at least one of them.
func TestTable2Shape(t *testing.T) {
	all := runAll(t)
	ratio := map[pacor.Mode]float64{}
	n := 0
	for _, modes := range all {
		ref := modes[pacor.ModePACOR]
		if ref.MultiClusters == 0 {
			continue
		}
		n++
		for mode, res := range modes {
			ratio[mode] += float64(res.MatchedClusters) / float64(ref.MultiClusters)
		}
	}
	if n == 0 {
		t.Skip("no designs run")
	}
	p := ratio[pacor.ModePACOR] / float64(n)
	w := ratio[pacor.ModeWithoutSelection] / float64(n)
	df := ratio[pacor.ModeDetourFirst] / float64(n)
	t.Logf("avg matched ratio: w/o Sel %.3f, Detour First %.3f, PACOR %.3f", w, df, p)
	if p < w-1e-9 || p < df-1e-9 {
		t.Errorf("PACOR (%.3f) must average at least as many matched clusters as w/o Sel (%.3f) and Detour First (%.3f)",
			p, w, df)
	}
	if !(p > w+1e-9 || p > df+1e-9) {
		t.Errorf("PACOR should strictly beat at least one baseline (w/o Sel %.3f, Detour First %.3f, PACOR %.3f)",
			w, df, p)
	}
}

// TestTable2MatchedSpread verifies that every cluster reported matched
// actually satisfies the length-matching constraint |l(vi)-l(vj)| <= delta.
func TestTable2MatchedSpread(t *testing.T) {
	for name, modes := range runAll(t) {
		d, err := bench.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		for mode, res := range modes {
			for _, c := range res.Clusters {
				if !c.Matched {
					continue
				}
				mn, mx := c.FullLens[0], c.FullLens[0]
				for _, l := range c.FullLens {
					if l < mn {
						mn = l
					}
					if l > mx {
						mx = l
					}
				}
				if mx-mn > d.Delta {
					t.Errorf("%s/%s cluster %d: matched but spread %d > delta %d (%v)",
						name, mode, c.ID, mx-mn, d.Delta, c.FullLens)
				}
			}
		}
	}
}

// TestFig3Candidates reproduces Figure 3: a four-valve cluster in the
// diagonal arrangement yields multiple distinct candidate Steiner trees,
// each with zero estimated mismatch.
func TestFig3Candidates(t *testing.T) {
	res := fig3Candidates()
	if len(res) < 2 {
		t.Fatalf("got %d candidates, want several (Figure 3 shows three)", len(res))
	}
	for i, tr := range res {
		if tr.DeltaL() != 0 {
			t.Errorf("candidate %d: ΔL = %d, want 0", i, tr.DeltaL())
		}
	}
}
