// Skew check: close the loop on the paper's motivation. Route a chip twice
// — once with the full PACOR flow (length matching on) and once treating
// every cluster as ordinary (no length matching) — then simulate pneumatic
// pressure propagation through the routed channels and compare the
// actuation-time skew of each synchronized cluster. Length-matched routing
// should actuate each cluster's valves near-simultaneously; unmatched
// routing should not.
//
// Run with:
//
//	go run ./examples/skewcheck
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/pressure"
	"repro/internal/valve"
)

func main() {
	spec := bench.Spec{
		Name: "skewcheck", W: 64, H: 64,
		Valves: 18, Pins: 120, Obs: 40,
		ClusterSizes: []int{4, 3, 3, 2, 2},
		Window:       12,
		Seed:         314,
	}
	d, err := bench.GenerateSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	matched := routeAndMeasure(d)
	unmatched := routeAndMeasure(stripLM(d))

	fmt.Println("pressure-propagation skew per synchronized cluster")
	fmt.Println("(RC time units; lower is better — 0 means simultaneous actuation)")
	fmt.Printf("%-24s %-22s %-22s\n", "cluster (valves)", "with length matching", "without (MST routing)")
	var keys []string
	for k := range matched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sumM, sumU float64
	for _, k := range keys {
		u, ok := unmatched[k]
		if !ok {
			continue
		}
		fmt.Printf("%-24s %-22.1f %-22.1f\n", k, matched[k], u)
		sumM += matched[k]
		sumU += u
	}
	fmt.Printf("\ntotal skew: %.1f with matching vs %.1f without (%.1fx reduction)\n",
		sumM, sumU, sumU/maxf(sumM, 1e-9))
}

// routeAndMeasure routes d and returns per-cluster skews keyed by the sorted
// valve list (cluster IDs are not stable across the two partitions).
func routeAndMeasure(d *valve.Design) map[string]float64 {
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		log.Fatal(err)
	}
	skews, err := pressure.EvaluateResult(d, res, pressure.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	out := map[string]float64{}
	for i := range res.Clusters {
		c := &res.Clusters[i]
		if sk, ok := skews[c.ID]; ok {
			out[fmt.Sprint(c.Valves)] = sk
		}
	}
	return out
}

// stripLM removes the length-matching constraints, so the flow routes every
// cluster with plain MST topology and no detouring.
func stripLM(d *valve.Design) *valve.Design {
	c := *d
	c.Name = d.Name + "-nolm"
	c.LMClusters = nil
	return &c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
