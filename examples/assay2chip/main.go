// Assay-to-chip: the full stack, end to end. A bioassay (a DAG of fluidic
// operations) is scheduled onto chip units; the schedule is projected into
// per-valve activation sequences (internal/actuation); the physical layout
// in micrometers is discretized onto the routing grid under mVLSI design
// rules (internal/tech); the PACOR flow routes the control layer; and the
// result is reported back in physical units with a pressure-propagation
// check of the synchronized units.
//
// Run with:
//
//	go run ./examples/assay2chip
package main

import (
	"fmt"
	"log"

	"repro/internal/actuation"
	"repro/internal/pacor"
	"repro/internal/pressure"
	"repro/internal/tech"
	"repro/internal/valve"
)

func main() {
	// 1. The bioassay: two reagent gates feeding a shared reaction chamber,
	// then a wash gate. Each gate is a rank of valves that must open and
	// close in lockstep (one LM cluster each).
	lockstep := func(n int, first valve.Status) [][]valve.Status {
		phase := func(s valve.Status) []valve.Status {
			row := make([]valve.Status, n)
			for i := range row {
				row[i] = s
			}
			return row
		}
		other := valve.Open
		if first == valve.Open {
			other = valve.Closed
		}
		return [][]valve.Status{phase(first), phase(other)}
	}
	assay := &actuation.Assay{
		Valves: 10,
		Units: []actuation.Unit{
			{Name: "gateA", Valves: []int{0, 1, 2}, Phases: lockstep(3, valve.Open)},
			{Name: "gateB", Valves: []int{3, 4, 5}, Phases: lockstep(3, valve.Closed)},
			{Name: "chamber", Valves: []int{6, 7}, Phases: lockstep(2, valve.Closed)},
			{Name: "wash", Valves: []int{8, 9}, Phases: lockstep(2, valve.Open)},
		},
		Ops: []actuation.Op{
			{Name: "loadA", Unit: 0, Dur: 4},
			{Name: "loadB", Unit: 1, Dur: 4},
			{Name: "react", Unit: 2, Dur: 6, Deps: []int{0, 1}},
			{Name: "wash", Unit: 3, Dur: 4, Deps: []int{2}},
		},
	}
	sched, err := actuation.Synthesize(assay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d operations over %d time steps\n", len(assay.Ops), sched.Steps)
	for v, sq := range sched.Seqs {
		fmt.Printf("  valve %d: %s\n", v, sq)
	}

	// 2. Physical layout (micrometers) under mVLSI design rules.
	rules := tech.DefaultRules() // 20um channels, 20um spacing -> 40um pitch
	phys := &tech.PhysicalDesign{
		Name:       "assay2chip",
		WidthUM:    2000,
		HeightUM:   1600,
		Rules:      rules,
		LMClusters: actuation.LMClusters(assay, sched),
		DeltaUM:    rules.PitchUM(), // one pitch of tolerance
	}
	positions := [][2]float64{
		// gateA rank
		{300, 300}, {540, 380}, {300, 500},
		// gateB rank
		{1500, 300}, {1740, 380}, {1500, 500},
		// chamber pair
		{900, 800}, {1100, 900},
		// wash pair
		{500, 1200}, {700, 1300},
	}
	for v, p := range positions {
		phys.Valves = append(phys.Valves, tech.PhysicalValve{
			XUM: p[0], YUM: p[1], Seq: sched.Seqs[v]})
	}
	// Flow-layer structures block parts of the control layer.
	phys.ObstacleRectsUM = [][4]float64{{880, 560, 1160, 700}}
	for x := 100.0; x < 2000; x += 160 {
		phys.PinPositionsUM = append(phys.PinPositionsUM, [2]float64{x, 0}, [2]float64{x, 1590})
	}
	d, err := phys.ToDesign()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscretized to a %dx%d grid (pitch %.0fum), delta=%d cells\n",
		d.W, d.H, rules.PitchUM(), d.Delta)

	// 3. Route the control layer.
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d/%d valves; %d/%d units length-matched; total channel %.1f mm\n",
		res.RoutedValves, res.TotalValves, res.MatchedClusters, res.MultiClusters,
		rules.ChannelLengthUM(res.TotalLen)/1000)

	// 4. Physical check: simulated actuation skew of every unit.
	skews, err := pressure.EvaluateResult(d, res, pressure.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Clusters {
		if sk, ok := skews[c.ID]; ok {
			fmt.Printf("  cluster %d (%d valves, matched=%v): simulated skew %.1f RC units\n",
				c.ID, len(c.Valves), c.Matched, sk)
		}
	}
}
