// Multiplexer control bank: the canonical mVLSI structure from the paper's
// introduction. A binary multiplexer addressing n flow channels needs
// 2*log2(n) control lines; each line actuates a rank of valves that must
// switch simultaneously, so every rank is a length-matching cluster. This
// example builds an 8-channel multiplexer (6 control ranks), routes it with
// PACOR, and checks that every rank is length-matched.
//
// Run with:
//
//	go run ./examples/multiplexer
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/render"
	"repro/internal/valve"
)

const (
	channels = 8 // flow channels being multiplexed
	bits     = 3 // log2(channels)
)

func main() {
	d := buildMultiplexer()
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplexer: %d flow channels, %d control ranks (%d valves)\n",
		channels, 2*bits, len(d.Valves))
	fmt.Printf("routed %d/%d valves, %d/%d ranks length-matched, total channel length %d\n",
		res.RoutedValves, res.TotalValves, res.MatchedClusters, res.MultiClusters, res.TotalLen)
	for _, c := range res.Clusters {
		if c.LM {
			status := "MATCHED"
			if !c.Matched {
				status = "unmatched"
			}
			fmt.Printf("  rank %d (%d valves): %s, lengths %v\n",
				c.ID, len(c.Valves), status, c.FullLens)
		}
	}
	if err := pacor.Verify(d, res); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("\nV valve   * rank channel   ~ escape   @ pin")
	fmt.Print(render.Result(d, res))
}

// buildMultiplexer lays out the valve matrix: flow channels run vertically
// at fixed columns; control rank r (bit b, polarity p) has a valve on every
// flow channel whose address bit b equals p. A rank's valves all share one
// activation sequence (the address schedule), and each rank is one
// length-matching cluster.
func buildMultiplexer() *valve.Design {
	const (
		colPitch = 7 // spacing between flow channels
		rowPitch = 6 // spacing between control ranks
		marginX  = 8
		marginY  = 6
	)
	w := marginX*2 + (channels-1)*colPitch
	h := marginY*2 + (2*bits-1)*rowPitch
	d := &valve.Design{Name: "multiplexer", W: w, H: h, Delta: 1}

	// The address schedule: at time step t, channel (t mod channels) is
	// selected. Rank (b, p) is OPEN at step t iff bit b of the selected
	// address equals p (a closed valve pinches the flow channel).
	steps := channels
	rankSeq := func(bit, pol int) valve.Seq {
		sq := make(valve.Seq, steps)
		for t := 0; t < steps; t++ {
			if (t>>bit)&1 == pol {
				sq[t] = valve.Open
			} else {
				sq[t] = valve.Closed
			}
		}
		return sq
	}

	id := 0
	for b := 0; b < bits; b++ {
		for p := 0; p < 2; p++ {
			rank := 2*b + p
			y := marginY + rank*rowPitch
			var cluster []int
			sq := rankSeq(b, p)
			for ch := 0; ch < channels; ch++ {
				if (ch>>b)&1 != p {
					continue // this rank does not pinch this channel
				}
				// Offset alternate valves by one row so DME merging segments
				// are non-degenerate arcs.
				yy := y
				if ch%2 == 1 {
					yy++
				}
				d.Valves = append(d.Valves, valve.Valve{
					ID:  id,
					Pos: geom.Pt{X: marginX + ch*colPitch, Y: yy},
					Seq: sq,
				})
				cluster = append(cluster, id)
				id++
			}
			d.LMClusters = append(d.LMClusters, cluster)
		}
	}
	// Candidate pins along the left and right edges (the chip's flow ports
	// occupy top and bottom in this scenario).
	for y := 1; y < h-1; y++ {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: w - 1, Y: y})
	}
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}
	return d
}
