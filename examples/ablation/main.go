// Ablation: run the three flow variants of Table 2 (w/o Sel, Detour First,
// PACOR) on a custom synthetic chip and print the comparison, demonstrating
// what the candidate-selection and final-stage-detouring design choices buy.
//
// Run with:
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/report"
)

func main() {
	// A custom mid-size instance, denser than S3 but smaller than S5.
	spec := bench.Spec{
		Name: "ablation-48", W: 48, H: 48,
		Valves: 24, Pins: 120, Obs: 40,
		ClusterSizes: []int{4, 4, 3, 3, 2, 2, 2},
		Window:       12,
		Seed:         5151,
	}
	d, err := bench.GenerateSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %dx%d, %d valves, %d LM clusters, %d obstacles\n\n",
		d.Name, d.W, d.H, len(d.Valves), len(d.LMClusters), len(d.Obstacles))

	var rows []report.Row
	for _, mode := range []pacor.Mode{
		pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR,
	} {
		params := pacor.DefaultParams()
		params.Mode = mode
		res, err := pacor.Route(d, params)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		if err := pacor.Verify(d, res); err != nil {
			log.Fatalf("%s: verification failed: %v", mode, err)
		}
		rows = append(rows, report.Row{Design: d.Name, Mode: mode, Result: res})
	}
	fmt.Print(report.Table2(rows))
	fmt.Println("\nReading the ablation: 'w/o Sel' drops the MWCP candidate-tree")
	fmt.Println("selection (worse overlaps -> fewer matched clusters, longer wires);")
	fmt.Println("'Detour First' matches lengths before escape routing (detours consume")
	fmt.Println("space early and can strand matching); PACOR runs the full flow.")
}
