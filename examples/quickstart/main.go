// Quickstart: build a small control-layer design in code, route it with the
// full PACOR flow, and inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/render"
	"repro/internal/valve"
)

func main() {
	// A 24x24 chip with one 4-valve length-matching cluster (a mixer whose
	// valves must actuate simultaneously), one synchronized pair, and two
	// independent valves.
	seq := func(s string) valve.Seq {
		q, err := valve.ParseSeq(s)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	d := &valve.Design{
		Name: "quickstart",
		W:    24, H: 24,
		Delta: 1, // channel lengths within a cluster may differ by at most 1
		Valves: []valve.Valve{
			// The mixer cluster: all share the switching pattern 0101X.
			{ID: 0, Pos: geom.Pt{X: 5, Y: 5}, Seq: seq("0101X")},
			{ID: 1, Pos: geom.Pt{X: 11, Y: 8}, Seq: seq("0101X")},
			{ID: 2, Pos: geom.Pt{X: 5, Y: 13}, Seq: seq("01011")},
			{ID: 3, Pos: geom.Pt{X: 11, Y: 16}, Seq: seq("0101X")},
			// A synchronized valve pair elsewhere on the chip.
			{ID: 4, Pos: geom.Pt{X: 17, Y: 6}, Seq: seq("00110")},
			{ID: 5, Pos: geom.Pt{X: 20, Y: 12}, Seq: seq("00110")},
			// Two independent valves with their own switching patterns.
			{ID: 6, Pos: geom.Pt{X: 17, Y: 18}, Seq: seq("11000")},
			{ID: 7, Pos: geom.Pt{X: 8, Y: 20}, Seq: seq("10101")},
		},
		Obstacles: []geom.Pt{
			{X: 14, Y: 10}, {X: 14, Y: 11}, {X: 14, Y: 12}, {X: 14, Y: 13},
		},
		// Valves 0-3 and 4-5 carry the length-matching constraint.
		LMClusters: [][]int{{0, 1, 2, 3}, {4, 5}},
	}
	// Candidate control pins every other boundary cell.
	for x := 1; x < 23; x += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: x, Y: 0}, geom.Pt{X: x, Y: 23})
	}
	for y := 1; y < 23; y += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: 23, Y: y})
	}
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d/%d valves, %d/%d clusters length-matched, total channel length %d\n",
		res.RoutedValves, res.TotalValves, res.MatchedClusters, res.MultiClusters, res.TotalLen)
	for _, c := range res.Clusters {
		if c.LM {
			fmt.Printf("cluster %d: matched=%v channel lengths to tap %v (delta <= %d)\n",
				c.ID, c.Matched, c.FullLens, d.Delta)
		}
	}
	if err := pacor.Verify(d, res); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("\nV valve   * cluster channel   ~ escape channel   @ control pin   # obstacle")
	fmt.Print(render.Result(d, res))
}
