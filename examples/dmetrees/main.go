// DME candidate trees (the paper's Figure 3): for a cluster of four valves,
// compute the merging segments bottom-up, then embed several candidate
// Steiner trees, each satisfying the length-matching constraint, and render
// them side by side.
//
// Run with:
//
//	go run ./examples/dmetrees
package main

import (
	"fmt"
	"strings"

	"repro/internal/dme"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
)

func main() {
	g := grid.New(28, 24)
	obs := grid.NewObsMap(g)
	// Four sinks S1..S4 in the diagonal arrangement of Figure 3, where the
	// merging segments are true Manhattan arcs (not points).
	sinks := []geom.Pt{
		{X: 4, Y: 4},   // S1
		{X: 14, Y: 8},  // S2
		{X: 4, Y: 16},  // S3
		{X: 14, Y: 20}, // S4
	}
	cands := dme.Candidates(obs, sinks, 4)
	fmt.Printf("%d candidate Steiner trees for sinks %v\n\n", len(cands), sinks)
	for i, tr := range cands {
		lens := tr.LeafFullLens()
		fmt.Printf("candidate %d: root %v, per-sink lengths %v, ΔL=%d, total length %d\n",
			i, tr.Root(), lens, tr.DeltaL(), tr.TotalReq())
	}
	fmt.Println()

	// Route and render each candidate on its own empty chip.
	for i, tr := range cands {
		var edges []route.Edge
		for ei, e := range tr.Edges() {
			edges = append(edges, route.Edge{ID: ei,
				Sources: []geom.Pt{e.From}, Targets: []geom.Pt{e.To}})
		}
		paths, ok := route.Negotiate(obs, edges, route.DefaultNegotiateParams())
		if !ok {
			fmt.Printf("candidate %d: routing failed\n", i)
			continue
		}
		fmt.Printf("candidate %d (S=sink, o=merging node, *=channel):\n", i)
		fmt.Println(renderTree(g, sinks, tr, paths))
	}
}

func renderTree(g grid.Grid, sinks []geom.Pt, tr *dme.Tree, paths map[int]grid.Path) string {
	cells := make([][]byte, g.H)
	for y := range cells {
		cells[y] = []byte(strings.Repeat(".", g.W))
	}
	for _, p := range paths {
		for _, c := range p {
			cells[c.Y][c.X] = '*'
		}
	}
	for ni, nd := range tr.Topo.Nodes {
		if nd.Sink < 0 {
			cells[tr.Pos[ni].Y][tr.Pos[ni].X] = 'o'
		}
	}
	for _, s := range sinks {
		cells[s.Y][s.X] = 'S'
	}
	var b strings.Builder
	for _, row := range cells {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
