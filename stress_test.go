package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
)

// TestStressScale runs the flow on a workload larger than any Table 1
// design (96 valves, 24 LM clusters on a 256x256 grid) and demands full
// completion with verified design rules — scalability headroom beyond the
// paper's benchmark suite.
func TestStressScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress workload skipped in -short mode")
	}
	d, err := bench.GenerateSpec(bench.StressSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1.0 {
		t.Errorf("completion %.3f, want 1.0", res.CompletionRate())
	}
	if res.MultiClusters != 24 {
		t.Errorf("clusters = %d, want 24", res.MultiClusters)
	}
	t.Logf("stress: %d/%d matched, total length %d, runtime %v",
		res.MatchedClusters, res.MultiClusters, res.TotalLen, res.Runtime)
}
