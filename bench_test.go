// Benchmark harness: every table and figure of the paper's evaluation has a
// regeneration target here.
//
//   - Table 1 (benchmark parameters):   BenchmarkTable1Generate_*
//     (cross-checked exactly by TestTable1Parameters in internal/bench)
//   - Table 2 (the self-comparison):    BenchmarkTable2_* — one benchmark per
//     design x mode, measuring the full flow; the row values themselves come
//     from TestTable2* and cmd/table2
//   - Figure 3 (candidate DME trees):   BenchmarkFig3Candidates
//
// Ablation benchmarks cover the design choices DESIGN.md calls out: the
// three MWCP solvers (the paper adopted ILP), min-cost-flow escape routing
// versus a greedy sequential baseline, and the two detour strategies.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/designcache"
	"repro/internal/detour"
	"repro/internal/dme"
	"repro/internal/escape"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mwcp"
	"repro/internal/pacor"
	"repro/internal/route"
	"repro/internal/valve"
)

// --- Table 1: benchmark generation --------------------------------------

func BenchmarkTable1Generate(b *testing.B) {
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Generate(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: the full flow, per design and mode -------------------------

func BenchmarkTable2(b *testing.B) {
	modes := []struct {
		name string
		mode pacor.Mode
	}{
		{"woSel", pacor.ModeWithoutSelection},
		{"DetourFirst", pacor.ModeDetourFirst},
		{"PACOR", pacor.ModePACOR},
	}
	for _, name := range bench.Names() {
		d, err := bench.Generate(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				params := pacor.DefaultParams()
				params.Mode = m.mode
				var last *pacor.Result
				for i := 0; i < b.N; i++ {
					res, err := pacor.Route(d, params)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.MatchedClusters), "matched")
				b.ReportMetric(float64(last.TotalLen), "wirelen")
				b.ReportMetric(100*last.CompletionRate(), "compl%")
			})
		}
	}
}

// --- Figure 3: candidate Steiner tree construction ------------------------

func fig3Candidates() []*dme.Tree {
	g := grid.New(28, 24)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 4, Y: 4}, {X: 14, Y: 8}, {X: 4, Y: 16}, {X: 14, Y: 20}}
	return dme.Candidates(obs, sinks, 4)
}

func BenchmarkFig3Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(fig3Candidates()) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// --- Ablation: MWCP solver choice (paper Section 4.2 adopted the ILP) -----

func mwcpInstance(nGroups, perGroup int, seed int64) *mwcp.Selection {
	rng := rand.New(rand.NewSource(seed))
	n := nGroups * perGroup
	groups := make([][]int, nGroups)
	nodeW := make([]float64, n)
	pw := make([][]float64, n)
	for i := range pw {
		pw[i] = make([]float64, n)
		nodeW[i] = -rng.Float64()
	}
	id := 0
	for g := range groups {
		for k := 0; k < perGroup; k++ {
			groups[g] = append(groups[g], id)
			id++
		}
	}
	for a := 0; a < n; a++ {
		for bb := a + 1; bb < n; bb++ {
			if a/perGroup != bb/perGroup && rng.Float64() < 0.4 {
				w := -rng.Float64()
				pw[a][bb], pw[bb][a] = w, w
			}
		}
	}
	return &mwcp.Selection{Groups: groups, NodeW: nodeW, PairW: pw}
}

func BenchmarkMWCP(b *testing.B) {
	sel := mwcpInstance(6, 4, 7)
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mwcp.SolveExact(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ILP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mwcp.SolveILP(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mwcp.SolveLocal(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: min-cost-flow escape vs greedy sequential A* ---------------

func escapeScenario() (*grid.ObsMap, []escape.Terminal, []geom.Pt) {
	g := grid.New(64, 64)
	obs := grid.NewObsMap(g)
	var terms []escape.Terminal
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		c := geom.Pt{X: 8 + rng.Intn(48), Y: 8 + rng.Intn(48)}
		obs.Set(c, true)
		terms = append(terms, escape.Terminal{ClusterID: i, Cells: []geom.Pt{c}})
	}
	var pins []geom.Pt
	for x := 2; x < 62; x += 4 {
		pins = append(pins, geom.Pt{X: x, Y: 0}, geom.Pt{X: x, Y: 63})
	}
	return obs, terms, pins
}

func BenchmarkEscape(b *testing.B) {
	b.Run("MinCostFlow", func(b *testing.B) {
		obs, terms, pins := escapeScenario()
		var routed, length int
		for i := 0; i < b.N; i++ {
			res := escape.Route(obs, terms, pins)
			routed = len(res.Paths)
			length = res.TotalLen
		}
		b.ReportMetric(float64(routed), "routed")
		b.ReportMetric(float64(length), "wirelen")
	})
	b.Run("GreedyAStar", func(b *testing.B) {
		var routed, length int
		for i := 0; i < b.N; i++ {
			obs, terms, pins := escapeScenario()
			routed, length = 0, 0
			g := obs.Grid()
			used := map[geom.Pt]bool{}
			for _, tm := range terms {
				var free []geom.Pt
				for _, p := range pins {
					if !used[p] && !obs.Blocked(p) {
						free = append(free, p)
					}
				}
				p, ok := route.AStar(g, route.Request{
					Sources: tm.Cells, Targets: free, Obs: obs,
				})
				if !ok {
					continue
				}
				obs.SetPath(p, true)
				used[p[len(p)-1]] = true
				routed++
				length += p.Len()
			}
		}
		b.ReportMetric(float64(routed), "routed")
		b.ReportMetric(float64(length), "wirelen")
	})
}

// --- Ablation: detour strategies ------------------------------------------

func BenchmarkDetour(b *testing.B) {
	g := grid.New(40, 40)
	base := grid.Path{}
	for x := 5; x <= 20; x++ {
		base = append(base, geom.Pt{X: x, Y: 20})
	}
	b.Run("BoundedAStar", func(b *testing.B) {
		obs := grid.NewObsMap(g)
		for i := 0; i < b.N; i++ {
			if _, ok := route.BoundedAStar(g, route.Request{
				Sources: []geom.Pt{base[0]},
				Targets: []geom.Pt{base[len(base)-1]},
				Obs:     obs,
			}, 35, 36); !ok {
				b.Fatal("bounded search failed")
			}
		}
	})
	b.Run("SnakeExtend", func(b *testing.B) {
		obs := grid.NewObsMap(g)
		for i := 0; i < b.N; i++ {
			if _, ok := route.ExtendPath(obs, base, 35, 36); !ok {
				b.Fatal("extension failed")
			}
		}
	})
}

// --- Ablation: negotiation history parameters -----------------------------

func BenchmarkNegotiationAlpha(b *testing.B) {
	g := grid.New(21, 5)
	obs := grid.NewObsMap(g)
	for _, w := range []geom.Pt{{X: 9, Y: 1}, {X: 11, Y: 1}, {X: 8, Y: 2}, {X: 12, Y: 2}} {
		obs.Set(w, true)
	}
	edges := []route.Edge{
		{ID: 0, Sources: []geom.Pt{{X: 10, Y: 0}}, Targets: []geom.Pt{{X: 10, Y: 4}}},
		{ID: 1, Sources: []geom.Pt{{X: 9, Y: 2}}, Targets: []geom.Pt{{X: 11, Y: 2}}},
	}
	for _, alpha := range []float64{0.1, 0.5, 0.8} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			params := route.NegotiateParams{BaseHist: 1.0, Alpha: alpha, Gamma: 10}
			solved := 0.0
			for i := 0; i < b.N; i++ {
				if _, ok := route.Negotiate(obs, edges, params); ok {
					solved = 1
				} else {
					solved = 0
				}
			}
			b.ReportMetric(solved, "solved")
		})
	}
}

// --- Substrate microbenchmarks ---------------------------------------------

// s5SizedSearch builds the S5-sized (152x152) scatter grid used by the
// allocation-trajectory benchmarks: one long corner-to-corner search.
func s5SizedSearch() (grid.Grid, *grid.ObsMap, geom.Pt, geom.Pt) {
	g := grid.New(152, 152)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		obs.Set(geom.Pt{X: rng.Intn(152), Y: rng.Intn(152)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: 150, Y: 150}
	obs.Set(src, false)
	obs.Set(dst, false)
	return g, obs, src, dst
}

// BenchmarkAStarReuse measures the steady-state cost of A* on a long-lived
// workspace: the generation-stamp trick means no per-search O(W·H) work, so
// allocs/op should stay at the returned path only (~2). The seed
// implementation allocated four O(W·H) slices, a target map, and one boxed
// heap item per push — 47,434 allocs/op (1.48 MB/op) on this exact scenario;
// BENCH_PR1.json records the trajectory.
func BenchmarkAStarReuse(b *testing.B) {
	g, obs, src, dst := s5SizedSearch()
	ws := route.NewWorkspace(g)
	req := route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ws.AStar(g, req); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkAStarFresh allocates a new workspace per search — the remaining
// per-call-allocation comparison point now that the seed path is gone.
func BenchmarkAStarFresh(b *testing.B) {
	g, obs, src, dst := s5SizedSearch()
	req := route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := route.NewWorkspace(g).AStar(g, req); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkBoundedAStarReuse is the bounded-length counterpart on a detour-
// sized window.
func BenchmarkBoundedAStarReuse(b *testing.B) {
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	ws := route.NewWorkspace(g)
	req := route.Request{
		Sources: []geom.Pt{{X: 5, Y: 20}},
		Targets: []geom.Pt{{X: 20, Y: 20}},
		Obs:     obs,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ws.BoundedAStar(g, req, 35, 36); !ok {
			b.Fatal("bounded search failed")
		}
	}
}

// BenchmarkFlowAllocs tracks whole-flow allocation per design — the
// trajectory metric for the routing hot path across PRs.
func BenchmarkFlowAllocs(b *testing.B) {
	for _, name := range []string{"S1", "S3", "S5"} {
		d, err := bench.Generate(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d, pacor.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAStarMaze(b *testing.B) {
	g := grid.New(128, 128)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		obs.Set(geom.Pt{X: rng.Intn(128), Y: rng.Intn(128)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: 126, Y: 126}
	obs.Set(src, false)
	obs.Set(dst, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.AStar(g, route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs})
	}
}

func BenchmarkClusterRouting(b *testing.B) {
	d, err := bench.Generate("S4")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params := pacor.DefaultParams()
		if _, err := pacor.Route(d, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignJSONRoundTrip(b *testing.B) {
	d, err := bench.Generate("S3")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := d.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		var back valve.Design
		if err := back.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStressScale measures the full flow on the beyond-paper stress
// workload (96 valves, 24 LM clusters, 256x256 grid).
func BenchmarkStressScale(b *testing.B) {
	d, err := bench.GenerateSpec(bench.StressSpec())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := pacor.Route(d, pacor.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if res.CompletionRate() != 1 {
			b.Fatalf("completion %.3f", res.CompletionRate())
		}
	}
}

// BenchmarkDetourPolicy compares Algorithm 2's restore-on-failure policy
// against the best-effort variant on a partially sealed net.
func BenchmarkDetourPolicy(b *testing.B) {
	build := func() (*grid.ObsMap, *detour.Net) {
		g := grid.New(30, 9)
		obs := grid.NewObsMap(g)
		long := hline(2, 22, 4)
		short := hline(26, 22, 4)
		for x := 23; x <= 28; x++ {
			if x != 25 && x != 26 {
				obs.Set(geom.Pt{X: x, Y: 3}, true)
			}
			obs.Set(geom.Pt{X: x, Y: 5}, true)
		}
		for x := 24; x <= 27; x++ {
			obs.Set(geom.Pt{X: x, Y: 2}, true)
		}
		net := &detour.Net{
			Segments:  []grid.Path{long, short},
			FullPaths: [][]int{{0}, {1}},
		}
		for _, s := range net.Segments {
			obs.SetPath(s, true)
		}
		return obs, net
	}
	b.Run("Restore", func(b *testing.B) {
		var spread int
		for i := 0; i < b.N; i++ {
			obs, net := build()
			detour.Match(obs, net, 1)
			mn, mx := net.Spread()
			spread = mx - mn
		}
		b.ReportMetric(float64(spread), "spread")
	})
	b.Run("BestEffort", func(b *testing.B) {
		var spread int
		for i := 0; i < b.N; i++ {
			obs, net := build()
			detour.MatchBestEffort(obs, net, 1)
			mn, mx := net.Spread()
			spread = mx - mn
		}
		b.ReportMetric(float64(spread), "spread")
	})
}

func hline(x0, x1, y int) grid.Path {
	var p grid.Path
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0; ; x += step {
		p = append(p, geom.Pt{X: x, Y: y})
		if x == x1 {
			break
		}
	}
	return p
}

// --- Deterministic parallel routing ---------------------------------------

// negotiateScenario builds a wide many-edge negotiation workload: nEdges
// horizontal nets crossing a scattered obstacle field, targets shifted so
// neighboring nets contend for rows. Wide enough that the scheduler finds
// disjoint search windows to overlap.
func negotiateScenario(nEdges int) (*grid.ObsMap, []route.Edge) {
	h := 4*nEdges + 4
	g := grid.New(96, h)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < g.Cells()/40; i++ {
		obs.Set(geom.Pt{X: 3 + rng.Intn(90), Y: rng.Intn(h)}, true)
	}
	edges := make([]route.Edge, nEdges)
	for i := range edges {
		y := 4*i + 2
		src := geom.Pt{X: 1, Y: y}
		dst := geom.Pt{X: 94, Y: (y + 6) % h}
		obs.Set(src, false)
		obs.Set(dst, false)
		edges[i] = route.Edge{ID: i, Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}}
	}
	return obs, edges
}

// BenchmarkNegotiateParallel measures the negotiation router at several
// worker counts on the same workload. The output is byte-identical across
// counts (route.RunScheduled validates every speculative search against the
// sequential obstacle state), so the only thing the worker count may change
// is wall time. With GOMAXPROCS=1 the j>1 variants measure pure scheduler
// overhead; the recorded per-benchmark gomaxprocs in BENCH_PR3.json keeps
// the numbers honest.
func BenchmarkNegotiateParallel(b *testing.B) {
	obs, edges := negotiateScenario(24)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			params := route.DefaultNegotiateParams()
			params.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, ok := route.Negotiate(obs, edges, params); !ok {
					b.Fatal("negotiation failed")
				}
			}
		})
	}
}

// BenchmarkFlowS5Parallel runs the full flow on the largest paper benchmark
// at several worker counts (negotiation rounds, ordinary-cluster batches,
// and escape rerouting all draw from the same pool).
func BenchmarkFlowS5Parallel(b *testing.B) {
	d, err := bench.Generate("S5")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			params := pacor.DefaultParams()
			params.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowEditLoop models an interactive editing session on the largest
// paper benchmark: a designer routes S5, then repeatedly moves one valve and
// re-routes. Cold is the per-step cost without the cross-run cache; ExactHit
// replays an unchanged design from the cache store; NearHit routes each
// edited variant warm-seeded by the most similar cached run (byte-identical
// output; the searches/op, replays/op, candreplay/op, and selreplay/op
// metrics prove the skipped work). NearHit moves ordinary (non-LM) valves —
// the edit class whose candidate construction and MWCP selection replay
// wholesale from the parent; NearHitLM moves length-matching valves, which
// invalidate their own cluster's candidates and force the ILP to re-run, so
// its speedup is bounded by the negotiation-layer replays alone. Each
// iteration visits a distinct variant so the cache cannot degenerate into
// exact replays; exacthits/op reports any wrap-around when b.N outruns the
// variant pool.
func BenchmarkFlowEditLoop(b *testing.B) {
	d, err := bench.Generate("S5")
	if err != nil {
		b.Fatal(err)
	}
	params := pacor.DefaultParams()

	b.Run("Cold", func(b *testing.B) {
		var searches int
		for i := 0; i < b.N; i++ {
			res, err := pacor.Route(d, params)
			if err != nil {
				b.Fatal(err)
			}
			searches = res.Negotiate.Searches
		}
		b.ReportMetric(float64(searches), "searches/op")
	})

	b.Run("ExactHit", func(b *testing.B) {
		r := designcache.New(designcache.Options{})
		if _, err := r.Route(d, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Route(d, params); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := r.Snapshot(); s.Hits != b.N {
			b.Fatalf("expected %d exact hits, got %+v", b.N, s)
		}
	})

	nearHit := func(b *testing.B, variants []*valve.Design) {
		// Parent plus last-routed variant only: the parent is touched on
		// every seed pick so it stays resident while routed variants are
		// evicted, keeping every iteration a genuine near hit even after
		// b.N wraps the variant list.
		r := designcache.New(designcache.Options{MaxEntries: 2})
		if _, err := r.Route(d, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var searches int
		for i := 0; i < b.N; i++ {
			res, err := r.Route(variants[i%len(variants)], params)
			if err != nil {
				b.Fatal(err)
			}
			searches = res.Negotiate.Searches
		}
		b.StopTimer()
		s := r.Snapshot()
		if s.NearHits == 0 || s.SeededEdges == 0 || s.SeededHits == 0 {
			b.Fatalf("edit loop never warm-seeded: %+v", s)
		}
		if s.Hits != 0 {
			b.Fatalf("edit loop served %d exact hits — revisited variants leaked into the cache: %+v", s.Hits, s)
		}
		b.ReportMetric(float64(searches), "searches/op")
		b.ReportMetric(float64(s.SeededHits)/float64(s.NearHits), "replays/op")
		b.ReportMetric(float64(s.CandReplayed)/float64(s.NearHits), "candreplay/op")
		b.ReportMetric(float64(s.SelReplayed)/float64(s.NearHits), "selreplay/op")
	}

	ordinary, lm := editVariants(b, d)
	b.Run("NearHit", func(b *testing.B) { nearHit(b, ordinary) })
	b.Run("NearHitLM", func(b *testing.B) { nearHit(b, lm) })
}

// editVariants enumerates every valid single-valve unit nudge of d — the
// space of one-step edits the session benchmark draws from — split into
// nudges of ordinary valves and nudges of length-matching-cluster members.
func editVariants(b *testing.B, d *valve.Design) (ordinary, lm []*valve.Design) {
	inLM := make(map[int]bool)
	for _, c := range d.LMClusters {
		for _, id := range c {
			inLM[id] = true
		}
	}
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for id := range d.Valves {
		for _, dir := range dirs {
			nd, err := bench.Nudge(d, id, dir[0], dir[1])
			if err != nil {
				continue
			}
			if inLM[d.Valves[id].ID] {
				lm = append(lm, nd)
			} else {
				ordinary = append(ordinary, nd)
			}
		}
	}
	if len(ordinary) == 0 || len(lm) == 0 {
		b.Fatalf("nudge variants: %d ordinary, %d lm — need both", len(ordinary), len(lm))
	}
	return ordinary, lm
}

// BenchmarkBaselineVsPACOR compares the prior-art-style direct router
// (internal/baseline) against the full flow on each design, reporting
// matched clusters and wirelength side by side.
func BenchmarkBaselineVsPACOR(b *testing.B) {
	for _, name := range bench.Names() {
		d, err := bench.Generate(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/Baseline", func(b *testing.B) {
			var last *pacor.Result
			for i := 0; i < b.N; i++ {
				res, err := baseline.Route(d)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.MatchedClusters), "matched")
			b.ReportMetric(float64(last.TotalLen), "wirelen")
			b.ReportMetric(100*last.CompletionRate(), "compl%")
		})
		b.Run(name+"/PACOR", func(b *testing.B) {
			var last *pacor.Result
			for i := 0; i < b.N; i++ {
				res, err := pacor.Route(d, pacor.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.MatchedClusters), "matched")
			b.ReportMetric(float64(last.TotalLen), "wirelen")
			b.ReportMetric(100*last.CompletionRate(), "compl%")
		})
	}
}

// --- ChipXL: the million-cell benchmark family ---------------------------

// chipXLSearch builds the ChipXL-scale point-to-point scenario: a 1000x1000
// grid (a million cells) with 2% scattered obstacles, corner to corner — the
// profile where the open list dominates the search cost and the bucket queue
// and bidirectional variants pay off.
func chipXLSearch() (grid.Grid, *grid.ObsMap, geom.Pt, geom.Pt) {
	const n = 1000
	g := grid.New(n, n)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(90001))
	for i := 0; i < n*n/50; i++ {
		obs.Set(geom.Pt{X: rng.Intn(n), Y: rng.Intn(n)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: n - 2, Y: n - 2}
	obs.Set(src, false)
	obs.Set(dst, false)
	return g, obs, src, dst
}

// BenchmarkAStarChipXL isolates the open-list cost at ChipXL scale: the same
// million-cell search under the binary heap, under the Dial bucket queue, and
// under the bidirectional search (which expands roughly two half-radius disks
// instead of one full disk, at the price of a different path shape).
func BenchmarkAStarChipXL(b *testing.B) {
	g, obs, src, dst := chipXLSearch()
	req := route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
	for _, mode := range []route.QueueMode{route.QueueHeap, route.QueueBucket} {
		b.Run(mode.String(), func(b *testing.B) {
			ws := route.NewWorkspace(g)
			ws.SetQueueMode(mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ws.AStar(g, req); !ok {
					b.Fatal("no path")
				}
			}
		})
	}
	b.Run("bidir", func(b *testing.B) {
		ws := route.NewWorkspace(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := ws.BiAStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	})
}

// BenchmarkFlowChipXL runs the full flow on ChipXL family members. The loop
// member keeps the full chip's valve density (2400 valves per 10^6 cells) at
// 300x300. The heap/bucket sub-benches keep their PR 6 names so snapshot
// chains stay comparable, but at 300x300 (> the HierAuto threshold) they now
// route the escape stage hierarchically; the flat sub-bench forces the
// hierarchy off and pins the PR 6 code path on the same hardware — the
// hier-vs-flat ratio at j=1 is the tentpole speedup claim, and the quality
// metrics report the hierarchy's explicit quality delta. The full 1000x1000
// chip, interactively unusable before the hierarchy, now runs un-skipped.
func BenchmarkFlowChipXL(b *testing.B) {
	member := bench.XLSpec(300, 216, 0.02)
	d, err := bench.GenerateSpec(member)
	if err != nil {
		b.Fatal(err)
	}
	flow := func(b *testing.B, params pacor.Params) {
		b.ReportAllocs()
		b.ResetTimer()
		var last *pacor.Result
		for i := 0; i < b.N; i++ {
			res, err := pacor.Route(d, params)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.MatchedClusters), "matched")
		b.ReportMetric(100*last.CompletionRate(), "compl%")
		b.ReportMetric(float64(last.TotalLen), "len")
	}
	for _, mode := range []route.QueueMode{route.QueueHeap, route.QueueBucket} {
		b.Run(member.Name+"/"+mode.String(), func(b *testing.B) {
			params := pacor.DefaultParams()
			params.Queue = mode
			flow(b, params)
		})
	}
	b.Run(member.Name+"/flat", func(b *testing.B) {
		params := pacor.DefaultParams()
		params.Queue = route.QueueBucket
		params.Hier.Mode = route.HierOff
		flow(b, params)
	})
	// One op takes minutes: run with -timeout 0 (or any bound past ~20 min).
	b.Run("Full", func(b *testing.B) {
		full, err := bench.Generate("ChipXL")
		if err != nil {
			b.Fatal(err)
		}
		params := pacor.DefaultParams()
		params.Queue = route.QueueBucket
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pacor.Route(full, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}
