package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
)

// TestGoldenS1 pins the exact S1 outcome: the flow is fully deterministic,
// so any change to these numbers is a behavioral change that should be
// deliberate (update the constants alongside EXPERIMENTS.md when it is).
func TestGoldenS1(t *testing.T) {
	d, err := bench.Generate("S1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		t.Fatal(err)
	}
	if res.MultiClusters != 2 || res.MatchedClusters != 2 {
		t.Errorf("clusters %d/%d, want 2/2 matched", res.MatchedClusters, res.MultiClusters)
	}
	if res.MatchedLen != 16 || res.TotalLen != 19 {
		t.Errorf("lengths %d/%d, want 16/19", res.MatchedLen, res.TotalLen)
	}
	if res.CompletionRate() != 1 {
		t.Errorf("completion %.2f", res.CompletionRate())
	}
}
