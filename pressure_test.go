package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/pressure"
	"repro/internal/valve"
)

// TestPressureSkewReduction closes the loop on the paper's physical
// motivation (Section 1): simulated pneumatic actuation skew within
// synchronized clusters must drop by a large factor when the length-matching
// flow is used, compared to routing the same clusters with plain MST
// topology and no matching.
func TestPressureSkewReduction(t *testing.T) {
	spec := bench.Spec{
		Name: "skewtest", W: 64, H: 64,
		Valves: 18, Pins: 120, Obs: 40,
		ClusterSizes: []int{4, 3, 3, 2, 2},
		Window:       12,
		Seed:         314,
	}
	d, err := bench.GenerateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	matched := measureSkews(t, d)
	noLM := *d
	noLM.Name = "skewtest-nolm"
	noLM.LMClusters = nil
	unmatched := measureSkews(t, &noLM)

	var sumM, sumU float64
	common := 0
	for k, m := range matched {
		u, ok := unmatched[k]
		if !ok {
			continue
		}
		common++
		sumM += m
		sumU += u
	}
	if common < 4 {
		t.Fatalf("only %d comparable clusters", common)
	}
	t.Logf("total skew: %.1f matched vs %.1f unmatched", sumM, sumU)
	if sumM*3 > sumU {
		t.Errorf("length matching should cut total actuation skew by >3x: %.1f vs %.1f", sumM, sumU)
	}
}

func measureSkews(t *testing.T, d *valve.Design) map[string]float64 {
	t.Helper()
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := pacor.Verify(d, res); err != nil {
		t.Fatal(err)
	}
	skews, err := pressure.EvaluateResult(d, res, pressure.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Cluster IDs differ between the two partitions; key by valve set.
	out := map[string]float64{}
	for i := range res.Clusters {
		c := &res.Clusters[i]
		if sk, ok := skews[c.ID]; ok {
			out[keyOf(c.Valves)] = sk
		}
	}
	return out
}

func keyOf(valves []int) string {
	s := ""
	for _, v := range valves {
		s += string(rune('0'+v/10)) + string(rune('0'+v%10)) + ","
	}
	return s
}
