// Command pacor routes the control layer of a flow-based microfluidic
// biochip design with the PACOR flow.
//
// Usage:
//
//	pacor [-mode pacor|wosel|detourfirst] [-j N] [-queue auto|heap|bucket] [-hier auto|on|off] [-stats] [-nocache] [-checkcache] [-render] [-clusters] design.json
//	pacor -bench S3 [-mode ...] [-render] [-svg out.svg] [-skew] [-json out.json]
//	pacor -bench S5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	pacor -bench S3 -cachedir .pacor-cache [-cache-entries N] [-cache-bytes B] [-stable] [-stats]
//
// -j sizes the worker pool of the parallel routing stages; every worker
// count produces byte-identical routing (see route.RunScheduled).
//
// -cachedir enables the cross-run design cache (internal/designcache): a
// repeated design replays its stored result, a similar design warm-seeds
// negotiation from the most similar cached run. Both route byte-identically
// to a cold run; -stable omits wall-clock fields so two runs can be
// compared with a plain diff.
//
// The design is a JSON file (see internal/valve); -bench routes one of the
// built-in Table 1 benchmarks instead. Exit status 1 indicates a routing or
// verification failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/bench"
	"repro/internal/designcache"
	"repro/internal/pacor"
	"repro/internal/pressure"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/valve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pacor:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pacor", flag.ContinueOnError)
	fs.SetOutput(stdout)
	modeFlag := fs.String("mode", "pacor", "flow variant: pacor, wosel, detourfirst")
	benchFlag := fs.String("bench", "", "route a built-in benchmark (Chip1, Chip2, S1..S5)")
	renderFlag := fs.Bool("render", false, "print an ASCII map of the routed chip")
	clustersFlag := fs.Bool("clusters", false, "print the per-cluster report")
	svgFlag := fs.String("svg", "", "write an SVG rendering to this file")
	jsonFlag := fs.String("json", "", "write the routing result as JSON to this file")
	skewFlag := fs.Bool("skew", false, "simulate pressure propagation and report per-cluster actuation skew")
	jFlag := fs.Int("j", 1, "worker pool for the parallel routing stages (any value routes identically)")
	statsFlag := fs.Bool("stats", false, "print negotiation work and incremental-cache counters")
	noCache := fs.Bool("nocache", false, "disable the incremental negotiation cache (routes identically, wall-clock only)")
	checkCache := fs.Bool("checkcache", false, "re-search every negotiation cache hit and fail loudly on divergence")
	queueFlag := fs.String("queue", "auto", "open-list implementation: auto, heap, bucket (routes identically, wall-clock only)")
	hierFlag := fs.String("hier", "auto", "hierarchical two-stage routing: auto (on above the Table 1 scale), on, off")
	cacheDir := fs.String("cachedir", "", "cross-run design cache directory: exact hits replay the stored result, near hits warm-seed negotiation (routes identically)")
	cacheEntries := fs.Int("cache-entries", 0, "design-cache resident entry bound (0 = default, negative = unbounded)")
	cacheBytes := fs.Int64("cache-bytes", 0, "design-cache resident byte bound (0 = default, negative = unbounded)")
	stableFlag := fs.Bool("stable", false, "omit wall-clock fields from the summary (for byte-comparing runs)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "pacor: memprofile:", err)
			}
		}()
	}

	var mode pacor.Mode
	switch *modeFlag {
	case "pacor":
		mode = pacor.ModePACOR
	case "wosel":
		mode = pacor.ModeWithoutSelection
	case "detourfirst":
		mode = pacor.ModeDetourFirst
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}

	var d *valve.Design
	var err error
	switch {
	case *benchFlag != "":
		d, err = bench.Generate(*benchFlag)
	case fs.NArg() == 1:
		var f *os.File
		f, err = os.Open(fs.Arg(0))
		if err == nil {
			d, err = valve.Read(f)
			f.Close()
		}
	default:
		return fmt.Errorf("usage: pacor [-mode m] [-render] [-clusters] design.json | -bench NAME")
	}
	if err != nil {
		return err
	}

	params := pacor.DefaultParams()
	params.Mode = mode
	params.Workers = *jFlag
	params.Negotiate.NoCache = *noCache
	params.Negotiate.CheckCache = *checkCache
	queue, err := route.ParseQueueMode(*queueFlag)
	if err != nil {
		return err
	}
	params.Queue = queue
	hier, err := route.ParseHierMode(*hierFlag)
	if err != nil {
		return err
	}
	params.Hier.Mode = hier
	var res *pacor.Result
	var cacheStats *designcache.Stats
	if *cacheDir != "" {
		cr := designcache.New(designcache.Options{
			Dir:        *cacheDir,
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
		})
		res, err = cr.Route(d, params)
		if err == nil {
			s := cr.Snapshot()
			cacheStats = &s
		}
	} else {
		res, err = pacor.Route(d, params)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "design %s (%dx%d, %d valves): mode %s\n", d.Name, d.W, d.H, len(d.Valves), mode)
	fmt.Fprintf(stdout, "  clusters (>=2 valves): %d, matched: %d\n", res.MultiClusters, res.MatchedClusters)
	fmt.Fprintf(stdout, "  matched channel length: %d, total channel length: %d\n", res.MatchedLen, res.TotalLen)
	if *stableFlag {
		fmt.Fprintf(stdout, "  routing completion: %.1f%% (%d/%d valves)\n",
			100*res.CompletionRate(), res.RoutedValves, res.TotalValves)
	} else {
		fmt.Fprintf(stdout, "  routing completion: %.1f%% (%d/%d valves), runtime %v\n",
			100*res.CompletionRate(), res.RoutedValves, res.TotalValves, res.Runtime)
	}
	if *statsFlag {
		ns := res.Negotiate
		fmt.Fprintf(stdout, "  negotiation: %d rounds, %d searches, cache %d hits / %d misses (%d invalidated)\n",
			ns.Rounds, ns.Searches, ns.CacheHits, ns.CacheMisses, ns.Invalidated)
		if ns.SeededEdges > 0 || ns.SeededHits > 0 {
			fmt.Fprintf(stdout, "  negotiation cross-run: %d seeded edges, %d replays\n", ns.SeededEdges, ns.SeededHits)
		}
		if lr := res.LMReuse; lr.CandReplayed > 0 || lr.SelectionReplayed {
			fmt.Fprintf(stdout, "  lm stage cross-run: %d/%d candidate sets replayed, selection replayed=%t\n",
				lr.CandReplayed, lr.CandClusters, lr.SelectionReplayed)
		}
		if cacheStats != nil {
			s := cacheStats
			fmt.Fprintf(stdout, "  design cache: %d exact (%d mem / %d disk), %d near, %d miss, %d dedup, %d evicted, %d disk errors\n",
				s.Hits+s.DiskHits, s.Hits, s.DiskHits, s.NearHits, s.Misses, s.Dedup, s.Evictions, s.DiskErrors)
		}
		if len(ns.FailedIDs) > 0 {
			fmt.Fprintf(stdout, "  negotiation failed edges: %v\n", ns.FailedIDs)
		}
		if hs := ns.Hier; hs.Tiles > 0 {
			fmt.Fprintf(stdout, "  negotiation hier: %d tiles, corridors %d (+%d none), rungs %d corridor / %d widened / %d flat\n",
				hs.Tiles, hs.Corridors, hs.NoCorridor, hs.CorridorHits, hs.Widened, hs.FlatFallbacks)
		}
		if hs := res.EscapeHier; hs.Tiles > 0 {
			fmt.Fprintf(stdout, "  escape hier: %d tiles, corridors %d (+%d none), rungs %d corridor / %d widened / %d flat\n",
				hs.Tiles, hs.Corridors, hs.NoCorridor, hs.CorridorHits, hs.Widened, hs.FlatFallbacks)
		}
	}
	if err := pacor.Verify(d, res); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Fprintln(stdout, "  design rules verified: OK")
	if *clustersFlag {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.ClusterReport(res))
	}
	if *renderFlag {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, render.Result(d, res))
	}
	if *svgFlag != "" {
		if err := os.WriteFile(*svgFlag, []byte(render.SVG(d, res)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", *svgFlag)
	}
	if *jsonFlag != "" {
		f, err := os.Create(*jsonFlag)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", *jsonFlag)
	}
	if *skewFlag {
		skews, err := pressure.EvaluateResult(d, res, pressure.DefaultParams())
		if err != nil {
			return err
		}
		ids := make([]int, 0, len(skews))
		for id := range skews {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintln(stdout, "  simulated actuation skew per multi-valve cluster (RC units):")
		for _, id := range ids {
			fmt.Fprintf(stdout, "    cluster %d: %.1f\n", id, skews[id])
		}
	}
	if res.CompletionRate() < 1 {
		return fmt.Errorf("routing incomplete: %d/%d valves", res.RoutedValves, res.TotalValves)
	}
	return nil
}

// writeHeapProfile snapshots the heap (after a final GC, so retained memory
// dominates over garbage) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
