package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchmark(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "S2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"design S2", "verified: OK", "100.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithOutputs(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "out.svg")
	js := filepath.Join(dir, "out.json")
	var out bytes.Buffer
	if err := run([]string{"-bench", "S1", "-render", "-clusters", "-skew",
		"-svg", svg, "-json", js}, &out); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(svg); err != nil || !bytes.HasPrefix(data, []byte("<svg")) {
		t.Errorf("svg output wrong: %v", err)
	}
	if data, err := os.ReadFile(js); err != nil || !bytes.Contains(data, []byte("total_length")) {
		t.Errorf("json output wrong: %v", err)
	}
	if !strings.Contains(out.String(), "actuation skew") {
		t.Error("skew report missing")
	}
	if !strings.Contains(out.String(), "FullLens") {
		t.Error("cluster report missing")
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"pacor", "wosel", "detourfirst"} {
		var out bytes.Buffer
		if err := run([]string{"-bench", "S1", "-mode", mode}, &out); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := run([]string{"-bench", "S1", "-mode", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bogus mode must error")
	}
}

func TestRunDesignFile(t *testing.T) {
	// Generate a design file via the bench generator and route it.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.json")
	var out bytes.Buffer
	if err := run([]string{"-bench", "S1", "-json", filepath.Join(dir, "ignore.json")}, &out); err != nil {
		t.Fatal(err)
	}
	// Write an actual design file.
	src := `{"name":"file","width":10,"height":10,"delta":1,
	  "valves":[{"pos":[3,3],"seq":"01"},{"pos":[6,6],"seq":"10"}],
	  "pins":[[0,5],[9,5]]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "design file") {
		// Name is "file".
		if !strings.Contains(out.String(), "design file (10x10") {
			t.Logf("output: %s", out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("no input must error")
	}
	if err := run([]string{"-bench", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown benchmark must error")
	}
	if err := run([]string{"/nonexistent/file.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must error")
	}
}
