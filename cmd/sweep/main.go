// Command sweep runs parameter ablations of the PACOR flow on a benchmark
// design: the selection weight λ (Eq. 2-3), the length-matching threshold δ,
// the per-cluster candidate budget, and the negotiation iteration bound γ.
//
// Usage:
//
//	sweep -bench S5 -param lambda|delta|candidates|gamma [-csv out.csv]
//
// Each row reports matched clusters, matched/total channel length,
// completion, and runtime for one parameter value.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/valve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type point struct {
	label string
	res   *pacor.Result
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stdout)
	benchFlag := fs.String("bench", "S5", "benchmark design to sweep on")
	paramFlag := fs.String("param", "lambda", "parameter: lambda, delta, candidates, gamma")
	csvFlag := fs.String("csv", "", "write rows as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := bench.Generate(*benchFlag)
	if err != nil {
		return err
	}
	pts, err := sweep(d, *paramFlag)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sweep of %s on %s (%d multi-valve clusters)\n\n",
		*paramFlag, d.Name, len(d.LMClusters))
	fmt.Fprintf(stdout, "%-12s %-9s %-12s %-10s %-7s %s\n",
		*paramFlag, "matched", "matchedLen", "totalLen", "compl", "runtime")
	for _, p := range pts {
		fmt.Fprintf(stdout, "%-12s %-9d %-12d %-10d %-7.0f %v\n",
			p.label, p.res.MatchedClusters, p.res.MatchedLen, p.res.TotalLen,
			100*p.res.CompletionRate(), p.res.Runtime.Round(1e6))
	}
	if *csvFlag != "" {
		if err := writeCSV(*csvFlag, *paramFlag, pts); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *csvFlag)
	}
	return nil
}

// sweep runs the flow across the chosen parameter's range.
func sweep(d *valve.Design, param string) ([]point, error) {
	var pts []point
	runOne := func(label string, dd *valve.Design, params pacor.Params) error {
		res, err := pacor.Route(dd, params)
		if err != nil {
			return err
		}
		if err := pacor.Verify(dd, res); err != nil {
			return fmt.Errorf("%s=%s: %w", param, label, err)
		}
		pts = append(pts, point{label: label, res: res})
		return nil
	}
	switch param {
	case "lambda":
		for _, l := range []float64{0, 0.1, 0.3, 0.5, 0.9} {
			params := pacor.DefaultParams()
			params.Lambda = l
			if err := runOne(fmt.Sprintf("%.1f", l), d, params); err != nil {
				return nil, err
			}
		}
	case "delta":
		for _, delta := range []int{0, 1, 2, 4, 8} {
			dd := *d
			dd.Delta = delta
			if err := runOne(strconv.Itoa(delta), &dd, pacor.DefaultParams()); err != nil {
				return nil, err
			}
		}
	case "candidates":
		for _, mc := range []int{1, 2, 4, 6, 10} {
			params := pacor.DefaultParams()
			params.MaxCandidates = mc
			if err := runOne(strconv.Itoa(mc), d, params); err != nil {
				return nil, err
			}
		}
	case "gamma":
		for _, g := range []int{1, 2, 5, 10, 20} {
			params := pacor.DefaultParams()
			params.Negotiate.Gamma = g
			if err := runOne(strconv.Itoa(g), d, params); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
	return pts, nil
}

func writeCSV(path, param string, pts []point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{param, "matched", "matched_length", "total_length",
		"completion", "runtime_ms"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := w.Write([]string{
			p.label,
			strconv.Itoa(p.res.MatchedClusters),
			strconv.Itoa(p.res.MatchedLen),
			strconv.Itoa(p.res.TotalLen),
			fmt.Sprintf("%.3f", p.res.CompletionRate()),
			fmt.Sprintf("%.2f", float64(p.res.Runtime.Microseconds())/1000),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
