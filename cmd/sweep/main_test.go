package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestSweepDelta(t *testing.T) {
	d, err := bench.Generate("S3")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sweep(d, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	// Larger delta changes detour targets and hence the routing order, so
	// per-step monotonicity is not guaranteed — but the loosest threshold
	// must match at least as many clusters as the tightest, and completion
	// holds throughout.
	for _, p := range pts {
		if p.res.CompletionRate() != 1 {
			t.Errorf("delta=%s: completion %.2f", p.label, p.res.CompletionRate())
		}
	}
	if last, first := pts[len(pts)-1].res.MatchedClusters, pts[0].res.MatchedClusters; last < first {
		t.Errorf("delta=%s matched %d < delta=%s matched %d",
			pts[len(pts)-1].label, last, pts[0].label, first)
	}
}

func TestSweepLambdaAndCandidates(t *testing.T) {
	d, err := bench.Generate("S2")
	if err != nil {
		t.Fatal(err)
	}
	for _, param := range []string{"lambda", "candidates", "gamma"} {
		pts, err := sweep(d, param)
		if err != nil {
			t.Fatalf("%s: %v", param, err)
		}
		if len(pts) != 5 {
			t.Errorf("%s: %d points", param, len(pts))
		}
	}
	if _, err := sweep(d, "bogus"); err == nil {
		t.Error("unknown parameter must error")
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.csv")
	var out bytes.Buffer
	if err := run([]string{"-bench", "S1", "-param", "delta", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sweep of delta on S1") {
		t.Errorf("header missing:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("csv rows = %d, want 6", len(recs))
	}
	if _, err := strconv.Atoi(recs[1][1]); err != nil {
		t.Errorf("matched column not numeric: %v", recs[1])
	}
}

func TestRunUnknownBench(t *testing.T) {
	if err := run([]string{"-bench", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown benchmark must error")
	}
}
