// Command pacorvet is the repository's custom static-analysis gate. It
// runs the internal/lint analyzer suite — determinism (maporder),
// allocation discipline (hotalloc), numeric tolerance (floateq), error
// hygiene (liberrs), stdout hygiene (nostdout) — over the packages matched
// by its arguments and exits nonzero on any finding.
//
// Usage:
//
//	pacorvet [-list] [patterns...]
//
// Patterns are `go list` package patterns (default ./...); a pattern that
// names a directory of loose .go files (e.g. internal/lint/testdata/src/maporder)
// is linted directly, which is how the fixture corpus is exercised.
// Suppress a finding in place with a justified directive:
//
//	//pacor:allow <analyzer> <reason>
//
// See docs/LINTING.md for the full rule catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing. Exit codes: 0 clean,
// 1 findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pacorvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("dir", ".", "module root to lint from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pacorvet [-list] [-dir root] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	findings, err := lint.Run(lint.Options{
		Dir:      *dir,
		Patterns: fs.Args(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "pacorvet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "pacorvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
