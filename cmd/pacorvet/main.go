// Command pacorvet is the repository's custom static-analysis gate. It
// runs the internal/lint analyzer suite — determinism (maporder,
// nondeterm), allocation discipline (hotalloc), numeric tolerance
// (floateq), error hygiene (liberrs), stdout hygiene (nostdout), pooled
// workspace ownership (wsaliasing), and the speculative-read stamping
// protocol (snapshotread) — over the packages matched by its arguments and
// exits nonzero on any finding.
//
// Usage:
//
//	pacorvet [-list] [-fix] [-format text|json|sarif] [patterns...]
//
// Patterns are `go list` package patterns (default ./...); a pattern that
// names a directory of loose .go files (e.g. internal/lint/testdata/src/maporder)
// is linted directly, which is how the fixture corpus is exercised. A
// pattern that matches no packages is an error (exit 2), not a silent
// clean run.
//
// -fix applies each finding's first suggested repair in place, then
// re-lints and reports what remains. -format=sarif emits SARIF 2.1.0 for
// CI annotation; -format=json emits the raw finding list.
//
// Suppress a finding in place with a justified directive:
//
//	//pacor:allow <analyzer> <reason>
//
// See docs/LINTING.md for the full rule catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing. Exit codes: 0 clean,
// 1 findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pacorvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("dir", ".", "module root to lint from")
	fix := fs.Bool("fix", false, "apply suggested fixes in place, then re-lint")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pacorvet [-list] [-fix] [-format text|json|sarif] [-dir root] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "pacorvet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	opts := lint.Options{Dir: *dir, Patterns: fs.Args()}
	findings, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "pacorvet: %v\n", err)
		return 2
	}

	if *fix {
		res, err := lint.ApplyFixes(findings, *dir)
		if err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "pacorvet: applied %d fix(es) in %d file(s), %d skipped\n",
			res.Applied, len(res.Files), res.Skipped)
		// Report what the fixes did not repair.
		findings, err = lint.Run(opts)
		if err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "pacorvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
