// Command pacorvet is the repository's custom static-analysis gate. It
// runs the internal/lint analyzer suite — determinism (maporder,
// nondeterm), allocation discipline (hotalloc), numeric tolerance
// (floateq), error hygiene (liberrs), stdout hygiene (nostdout), pooled
// workspace ownership (wsaliasing), the speculative-read stamping
// protocol (snapshotread), and the concurrency layer (sharedcapture,
// commitorder, conchygiene, mcfpair) — over the packages matched by its
// arguments and exits nonzero on any finding.
//
// Usage:
//
//	pacorvet [-list] [-fix] [-format text|json|sarif] [-cache dir] [-diff ref] [-j n] [patterns...]
//
// Patterns are `go list` package patterns (default ./...); a pattern that
// names a directory of loose .go files (e.g. internal/lint/testdata/src/maporder)
// is linted directly, which is how the fixture corpus is exercised. A
// pattern that matches no packages is an error (exit 2), not a silent
// clean run.
//
// -fix applies each finding's first suggested repair in place, then
// re-lints and reports what remains. -format=sarif emits SARIF 2.1.0 for
// CI annotation; -format=json emits the raw finding list.
//
// -cache dir enables the incremental fact cache: packages whose sources
// and transitive dependency summaries are unchanged since the last run
// are served from dir instead of re-analyzed, with byte-identical output.
// -diff ref replaces the patterns with the packages affected by the git
// diff against ref (changed packages plus their reverse dependencies); a
// diff touching nothing exits 0 immediately. -j n analyzes up to n
// independent packages concurrently (default: GOMAXPROCS); findings,
// stats, and cache contents are byte-identical for every n.
//
// Suppress a finding in place with a justified directive:
//
//	//pacor:allow <analyzer> <reason>
//
// See docs/LINTING.md for the full rule catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing. Exit codes: 0 clean,
// 1 findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pacorvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("dir", ".", "module root to lint from")
	fix := fs.Bool("fix", false, "apply suggested fixes in place, then re-lint")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	cacheDir := fs.String("cache", "", "fact-cache directory; unchanged packages are served from it")
	diffRef := fs.String("diff", "", "lint only packages affected by the git diff against this ref")
	jobs := fs.Int("j", runtime.NumCPU(), "packages analyzed concurrently; output is identical for every value")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pacorvet [-list] [-fix] [-format text|json|sarif] [-cache dir] [-diff ref] [-j n] [-dir root] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "pacorvet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if *diffRef != "" {
		if len(patterns) > 0 {
			fmt.Fprintf(stderr, "pacorvet: -diff and explicit patterns are mutually exclusive\n")
			return 2
		}
		affected, err := lint.DiffPatterns(*dir, *diffRef)
		if err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
		if len(affected) == 0 {
			fmt.Fprintf(stderr, "pacorvet: no Go packages affected since %s\n", *diffRef)
			return 0
		}
		fmt.Fprintf(stderr, "pacorvet: %d package(s) affected since %s\n", len(affected), *diffRef)
		patterns = affected
	}

	stats := &lint.RunStats{}
	opts := lint.Options{Dir: *dir, Patterns: patterns, CacheDir: *cacheDir, Stats: stats, Jobs: *jobs}
	findings, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "pacorvet: %v\n", err)
		return 2
	}

	if *fix {
		res, err := lint.ApplyFixes(findings, *dir)
		if err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "pacorvet: applied %d fix(es) in %d file(s), %d skipped\n",
			res.Applied, len(res.Files), res.Skipped)
		// Report what the fixes did not repair.
		*stats = lint.RunStats{}
		findings, err = lint.Run(opts)
		if err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	}

	if *cacheDir != "" {
		fmt.Fprintf(stderr, "pacorvet: %d module package(s): %d re-analyzed, %d from cache\n",
			stats.Packages, stats.Reanalyzed, stats.CacheHits)
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "pacorvet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "pacorvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
