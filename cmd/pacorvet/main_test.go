package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot lets the tests lint from the repository root while the test
// binary runs inside cmd/pacorvet.
const moduleRoot = "../.."

// TestFixturesFail pins the tool's reason to exist: the fixture corpus is
// full of violations, so linting it must exit 1 and name each analyzer.
func TestFixturesFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", moduleRoot,
		"internal/lint/testdata/src/maporder",
		"internal/lint/testdata/src/hotalloc",
		"internal/lint/testdata/src/floateq",
		"internal/lint/testdata/src/liberrs",
		"internal/lint/testdata/src/nostdout",
		"internal/lint/testdata/src/wsaliasing",
		"internal/lint/testdata/src/snapshotread",
		"internal/lint/testdata/src/nondeterm",
		"internal/lint/testdata/src/interproc",
		"internal/lint/testdata/src/snapinterproc",
		"internal/lint/testdata/src/journalpair",
		"internal/lint/testdata/src/parseerror",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, an := range []string{
		"[maporder]", "[hotalloc]", "[floateq]", "[liberrs]", "[nostdout]",
		"[wsaliasing]", "[snapshotread]", "[nondeterm]",
		"[journalpair]", "[parse]",
	} {
		if !strings.Contains(out, an) {
			t.Errorf("output missing findings from %s:\n%s", an, out)
		}
	}
}

// TestModuleClean mirrors the CI gate from the command side: the real
// module lints clean.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", moduleRoot, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestListFlag checks the analyzer listing used in docs and debugging.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, an := range []string{
		"maporder", "hotalloc", "floateq", "liberrs", "nostdout",
		"wsaliasing", "snapshotread", "journalpair", "nondeterm",
	} {
		if !strings.Contains(stdout.String(), an) {
			t.Errorf("-list missing %s:\n%s", an, stdout.String())
		}
	}
}

// TestBadPattern checks the usage exit code.
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", moduleRoot, "./does/not/exist/..."}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exit code = %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

// TestNoMatchPattern pins the no-silent-clean rule: a syntactically valid
// pattern that matches zero packages must exit 2 with a diagnostic, because
// `go list` itself exits 0 and linting nothing would look like a pass.
func TestNoMatchPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", moduleRoot, "./docs/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("no-match pattern exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr missing no-match diagnostic:\n%s", stderr.String())
	}
}

// TestBadFormat checks that an unknown -format is a usage error.
func TestBadFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad format exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown -format") {
		t.Errorf("stderr missing format diagnostic:\n%s", stderr.String())
	}
}

// TestFormatSARIF checks the CI annotation output: findings exit 1, the
// stream is valid JSON, and rule/location fields land where SARIF viewers
// expect them.
func TestFormatSARIF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", moduleRoot, "-format", "sarif",
		"internal/lint/testdata/src/floateq",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single SARIF 2.1.0 run: version=%q runs=%d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "pacorvet" || len(r.Tool.Driver.Rules) < 8 {
		t.Errorf("driver = %q with %d rules, want pacorvet with the full registry",
			r.Tool.Driver.Name, len(r.Tool.Driver.Rules))
	}
	if len(r.Results) == 0 {
		t.Fatal("no results for a fixture full of violations")
	}
	for _, res := range r.Results {
		if res.RuleID != "floateq" || res.Level != "error" {
			t.Errorf("result = %q/%q, want floateq/error", res.RuleID, res.Level)
		}
		if len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.Region.StartLine < 1 ||
			!strings.HasSuffix(res.Locations[0].PhysicalLocation.ArtifactLocation.URI, ".go") {
			t.Errorf("malformed location: %+v", res.Locations)
		}
	}
}

// TestFormatJSON checks the machine-readable finding list.
func TestFormatJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", moduleRoot, "-format", "json",
		"internal/lint/testdata/src/nondeterm",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var findings []struct {
		Analyzer string
		Message  string
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 || findings[0].Analyzer != "nondeterm" {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

// TestFixFlag runs -fix over a scratch copy of the seeded-defect tree and
// checks the tool converges to exit 0.
func TestFixFlag(t *testing.T) {
	srcDir := filepath.Join(moduleRoot, "internal", "lint", "testdata", "fix")
	matches, err := filepath.Glob(filepath.Join(srcDir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no seeded-defect fixtures: %v", err)
	}
	scratch := t.TempDir()
	for _, p := range matches {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", moduleRoot, "-fix", scratch}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-fix exit code = %d, want 0 (converged)\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied") {
		t.Errorf("stderr missing the fix summary:\n%s", stderr.String())
	}
}
