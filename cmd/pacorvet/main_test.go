package main

import (
	"bytes"
	"strings"
	"testing"
)

// moduleRoot lets the tests lint from the repository root while the test
// binary runs inside cmd/pacorvet.
const moduleRoot = "../.."

// TestFixturesFail pins the tool's reason to exist: the fixture corpus is
// full of violations, so linting it must exit 1 and name each analyzer.
func TestFixturesFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", moduleRoot,
		"internal/lint/testdata/src/maporder",
		"internal/lint/testdata/src/hotalloc",
		"internal/lint/testdata/src/floateq",
		"internal/lint/testdata/src/liberrs",
		"internal/lint/testdata/src/nostdout",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, an := range []string{"[maporder]", "[hotalloc]", "[floateq]", "[liberrs]", "[nostdout]"} {
		if !strings.Contains(out, an) {
			t.Errorf("output missing findings from %s:\n%s", an, out)
		}
	}
}

// TestModuleClean mirrors the CI gate from the command side: the real
// module lints clean.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", moduleRoot, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestListFlag checks the analyzer listing used in docs and debugging.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, an := range []string{"maporder", "hotalloc", "floateq", "liberrs", "nostdout"} {
		if !strings.Contains(stdout.String(), an) {
			t.Errorf("-list missing %s:\n%s", an, stdout.String())
		}
	}
}

// TestBadPattern checks the usage exit code.
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", moduleRoot, "./does/not/exist/..."}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exit code = %d, want 2 (stderr: %s)", code, stderr.String())
	}
}
