// Command benchgen emits the paper's Table 1 benchmark designs as JSON
// design files, one per benchmark, into the given directory.
//
// Usage:
//
//	benchgen [-out DIR] [-nudge] [NAME ...]
//	benchgen [-out DIR] -xl [-size N] [-valves N] [-density F]
//
// With no names, all seven designs are generated. It also prints the
// Table 1 parameter summary for cross-checking against the paper.
//
// -xl emits one member of the ChipXL scalability family instead: a size×size
// grid with the requested valve count and obstacle density (bench.XLSpec).
// Generation is deterministic in the knobs, so a re-run with equal
// parameters reproduces the file byte for byte. NAME "ChipXL" (without -xl)
// emits the canonical 1000×1000 preset.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/valve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	out := fs.String("out", ".", "output directory")
	xl := fs.Bool("xl", false, "emit a ChipXL-family design parameterized by -size/-valves/-density")
	size := fs.Int("size", 1000, "grid side length of the -xl design")
	valves := fs.Int("valves", 2400, "total valve count of the -xl design")
	density := fs.Float64("density", 0.02, "obstacle density (fraction of cells) of the -xl design")
	nudge := fs.Bool("nudge", false, "also emit a one-valve-nudged variant of each design (near-hit probe for the design cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if *xl {
		if len(names) > 0 {
			return fmt.Errorf("-xl takes no design names (got %v)", names)
		}
		return emit(stdout, *out, bench.XLSpec(*size, *valves, *density))
	}
	if len(names) == 0 {
		names = bench.Names()
	}
	fmt.Fprintf(stdout, "%-8s %-9s %-8s %-5s %-5s %-10s\n",
		"Design", "Size", "#Valves", "#CP", "#Obs", "#Clusters")
	for _, name := range names {
		d, err := bench.Generate(name)
		if err != nil {
			return err
		}
		if err := write(stdout, *out, d); err != nil {
			return err
		}
		if *nudge {
			nd, err := bench.NudgeAny(d)
			if err != nil {
				return err
			}
			if err := write(stdout, *out, nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit generates one custom spec and writes it with its own header line.
func emit(stdout io.Writer, dir string, spec bench.Spec) error {
	d, err := bench.GenerateSpec(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-8s %-9s %-8s %-5s %-5s %-10s\n",
		"Design", "Size", "#Valves", "#CP", "#Obs", "#Clusters")
	return write(stdout, dir, d)
}

// write serializes one design to dir/<name>.json and prints its summary row.
func write(stdout io.Writer, dir string, d *valve.Design) error {
	path := filepath.Join(dir, d.Name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-8s %-9s %-8d %-5d %-5d %-10d  -> %s\n",
		d.Name, fmt.Sprintf("%dx%d", d.W, d.H), len(d.Valves), len(d.Pins),
		len(d.Obstacles), len(d.LMClusters), path)
	return nil
}
