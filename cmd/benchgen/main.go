// Command benchgen emits the paper's Table 1 benchmark designs as JSON
// design files, one per benchmark, into the given directory.
//
// Usage:
//
//	benchgen [-out DIR] [NAME ...]
//
// With no names, all seven designs are generated. It also prints the
// Table 1 parameter summary for cross-checking against the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	out := fs.String("out", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = bench.Names()
	}
	fmt.Fprintf(stdout, "%-8s %-9s %-8s %-5s %-5s %-10s\n",
		"Design", "Size", "#Valves", "#CP", "#Obs", "#Clusters")
	for _, name := range names {
		d, err := bench.Generate(name)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := d.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-8s %-9s %-8d %-5d %-5d %-10d  -> %s\n",
			name, fmt.Sprintf("%dx%d", d.W, d.H), len(d.Valves), len(d.Pins),
			len(d.Obstacles), len(d.LMClusters), path)
	}
	return nil
}
