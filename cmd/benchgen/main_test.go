package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/valve"
)

func TestRunGeneratesFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", dir, "S1", "S2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"S1", "S2"} {
		f, err := os.Open(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := valve.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: emitted design unreadable: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("%s: name %q", name, d.Name)
		}
	}
	if !strings.Contains(out.String(), "12x12") {
		t.Errorf("summary missing S1 size:\n%s", out.String())
	}
}

func TestRunAllDesignsSummary(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Chip1", "Chip2", "S1", "S2", "S3", "S4", "S5"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("summary missing %s", name)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".json")); err != nil {
			t.Errorf("%s.json not written", name)
		}
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown design must error")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run([]string{"-out", "/nonexistent/nested/dir", "S1"}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable directory must error")
	}
}
