// Command table2 regenerates the paper's Table 2: the three flow variants
// (w/o Sel, Detour First, PACOR) run on every Table 1 benchmark, reporting
// matched clusters, matched channel length, total channel length, runtime,
// and the routing completion rate.
//
// Usage:
//
//	table2 [-designs Chip1,S3,...] [-verify] [-csv out.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	fs.SetOutput(stdout)
	designsFlag := fs.String("designs", "", "comma-separated design names (default: all)")
	verify := fs.Bool("verify", true, "verify design rules of every solution")
	csvFlag := fs.String("csv", "", "also write the raw rows as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := bench.Names()
	if *designsFlag != "" {
		names = strings.Split(*designsFlag, ",")
	}
	modes := []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR}
	var rows []report.Row
	for _, name := range names {
		d, err := bench.Generate(name)
		if err != nil {
			return err
		}
		for _, mode := range modes {
			params := pacor.DefaultParams()
			params.Mode = mode
			res, err := pacor.Route(d, params)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mode, err)
			}
			if *verify {
				if err := pacor.Verify(d, res); err != nil {
					return fmt.Errorf("%s/%s: verification failed: %w", name, mode, err)
				}
			}
			rows = append(rows, report.Row{Design: name, Mode: mode, Result: res})
		}
	}
	fmt.Fprint(stdout, report.Table2(rows))
	if *csvFlag != "" {
		if err := writeCSV(*csvFlag, rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *csvFlag)
	}
	return nil
}

func writeCSV(path string, rows []report.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"design", "mode", "clusters", "matched", "matched_length",
		"total_length", "routed_valves", "total_valves", "runtime_ms",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		res := r.Result
		if err := w.Write([]string{
			r.Design, r.Mode.String(),
			strconv.Itoa(res.MultiClusters), strconv.Itoa(res.MatchedClusters),
			strconv.Itoa(res.MatchedLen), strconv.Itoa(res.TotalLen),
			strconv.Itoa(res.RoutedValves), strconv.Itoa(res.TotalValves),
			fmt.Sprintf("%.2f", float64(res.Runtime.Microseconds())/1000),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
