// Command table2 regenerates the paper's Table 2: the three flow variants
// (w/o Sel, Detour First, PACOR) run on every Table 1 benchmark, reporting
// matched clusters, matched channel length, total channel length, runtime,
// and the routing completion rate.
//
// The design x mode sweep is embarrassingly parallel: each job routes
// independently (each worker generates its own design and owns its search
// workspace), so jobs fan out over a worker pool sized by -j while the
// report keeps the deterministic sequential ordering.
//
// Usage:
//
//	table2 [-designs Chip1,S3,...] [-verify] [-csv out.csv] [-j N] [-queue auto|heap|bucket] [-hier auto|on|off] [-stable] [-stats] [-nocache] [-checkcache]
//	table2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/report"
	"repro/internal/route"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
}

// job is one (design, mode) cell of the sweep. Results land in rows[idx],
// preserving the sequential output order regardless of completion order.
type job struct {
	idx    int
	design string
	mode   pacor.Mode
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	fs.SetOutput(stdout)
	designsFlag := fs.String("designs", "", "comma-separated design names (default: all)")
	verify := fs.Bool("verify", true, "verify design rules of every solution")
	csvFlag := fs.String("csv", "", "also write the raw rows as CSV to this file")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel routing jobs (1 = sequential)")
	stable := fs.Bool("stable", false, "zero out runtimes for byte-stable output (determinism checks)")
	statsFlag := fs.Bool("stats", false, "append per-job negotiation and cache counters to the report")
	noCache := fs.Bool("nocache", false, "disable the incremental negotiation cache (routes identically, wall-clock only)")
	checkCache := fs.Bool("checkcache", false, "re-search every negotiation cache hit and fail loudly on divergence")
	queueFlag := fs.String("queue", "auto", "open-list implementation: auto, heap, bucket (routes identically, wall-clock only)")
	hierFlag := fs.String("hier", "auto", "hierarchical two-stage routing: auto (on above the Table 1 scale), on, off")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		*workers = 1
	}
	queue, err := route.ParseQueueMode(*queueFlag)
	if err != nil {
		return err
	}
	hier, err := route.ParseHierMode(*hierFlag)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "table2: memprofile:", err)
			}
		}()
	}

	names := bench.Names()
	if *designsFlag != "" {
		names = strings.Split(*designsFlag, ",")
	}
	// Fail fast on unknown designs before spawning workers.
	for _, name := range names {
		if !bench.Known(name) {
			return fmt.Errorf("unknown design %q", name)
		}
	}
	modes := []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR}

	jobs := make([]job, 0, len(names)*len(modes))
	for _, name := range names {
		for _, mode := range modes {
			jobs = append(jobs, job{idx: len(jobs), design: name, mode: mode})
		}
	}
	rows := make([]report.Row, len(jobs))
	errs := make([]error, len(jobs))

	next := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				rows[j.idx], errs[j.idx] = runJob(j, *verify, *noCache, *checkCache, queue, hier)
			}
		}()
	}
	for _, j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()
	// Report the first error in sequential order, independent of worker
	// scheduling.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	if *stable {
		for i := range rows {
			rows[i].Result.Runtime = 0
			rows[i].Result.StageTimes = nil
		}
	}
	fmt.Fprint(stdout, report.Table2(rows))
	if *statsFlag {
		fmt.Fprintln(stdout, "negotiation stats (rounds / searches / cache hits / misses / invalidated):")
		for _, r := range rows {
			ns := r.Result.Negotiate
			fmt.Fprintf(stdout, "  %-6s %-12s %d / %d / %d / %d / %d\n",
				r.Design, r.Mode, ns.Rounds, ns.Searches, ns.CacheHits, ns.CacheMisses, ns.Invalidated)
			if hs := r.Result.EscapeHier; hs.Tiles > 0 {
				fmt.Fprintf(stdout, "  %-6s %-12s escape hier: corridors %d (+%d none), rungs %d / %d / %d\n",
					r.Design, r.Mode, hs.Corridors, hs.NoCorridor, hs.CorridorHits, hs.Widened, hs.FlatFallbacks)
			}
		}
	}
	if *csvFlag != "" {
		if err := writeCSV(*csvFlag, rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *csvFlag)
	}
	return nil
}

// runJob routes one design with one mode. The design is generated inside the
// worker so no mutable state is shared between jobs.
func runJob(j job, verify, noCache, checkCache bool, queue route.QueueMode, hier route.HierMode) (report.Row, error) {
	d, err := bench.Generate(j.design)
	if err != nil {
		return report.Row{}, err
	}
	params := pacor.DefaultParams()
	params.Mode = j.mode
	params.Negotiate.NoCache = noCache
	params.Negotiate.CheckCache = checkCache
	params.Queue = queue
	params.Hier.Mode = hier
	res, err := pacor.Route(d, params)
	if err != nil {
		return report.Row{}, fmt.Errorf("%s/%s: %w", j.design, j.mode, err)
	}
	if verify {
		if err := pacor.Verify(d, res); err != nil {
			return report.Row{}, fmt.Errorf("%s/%s: verification failed: %w", j.design, j.mode, err)
		}
	}
	return report.Row{Design: j.design, Mode: j.mode, Result: res}, nil
}

// writeHeapProfile snapshots the heap (after a final GC, so retained memory
// dominates over garbage) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, rows []report.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"design", "mode", "clusters", "matched", "matched_length",
		"total_length", "routed_valves", "total_valves", "runtime_ms",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		res := r.Result
		if err := w.Write([]string{
			r.Design, r.Mode.String(),
			strconv.Itoa(res.MultiClusters), strconv.Itoa(res.MatchedClusters),
			strconv.Itoa(res.MatchedLen), strconv.Itoa(res.TotalLen),
			strconv.Itoa(res.RoutedValves), strconv.Itoa(res.TotalValves),
			fmt.Sprintf("%.2f", float64(res.Runtime.Microseconds())/1000),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
