package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallDesigns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-designs", "S1,S2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"S1", "S2", "Avg (normalized):", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t2.csv")
	var out bytes.Buffer
	if err := run([]string{"-designs", "S1", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 modes
		t.Fatalf("csv rows = %d, want 4", len(recs))
	}
	if recs[0][0] != "design" || recs[1][0] != "S1" {
		t.Errorf("csv content wrong: %v", recs[:2])
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run([]string{"-designs", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown design must error")
	}
}
