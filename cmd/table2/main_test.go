package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallDesigns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-designs", "S1,S2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"S1", "S2", "Avg (normalized):", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t2.csv")
	var out bytes.Buffer
	if err := run([]string{"-designs", "S1", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 modes
		t.Fatalf("csv rows = %d, want 4", len(recs))
	}
	if recs[0][0] != "design" || recs[1][0] != "S1" {
		t.Errorf("csv content wrong: %v", recs[:2])
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run([]string{"-designs", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown design must error")
	}
}

// TestParallelDeterminism asserts that the parallel sweep produces
// byte-identical output to the sequential path: routing is fully
// deterministic per job and the report preserves sequential ordering, so
// only the (suppressed via -stable) runtimes could ever differ.
func TestParallelDeterminism(t *testing.T) {
	outputs := make([]string, 2)
	for i, j := range []string{"1", "4"} {
		var out bytes.Buffer
		if err := run([]string{"-designs", "S1,S2,S3", "-stable", "-j", j}, &out); err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("parallel output differs from sequential:\n--- -j 1 ---\n%s\n--- -j 4 ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestRepeatedSweepDeterminism runs the identical sweep twice and diffs
// the bytes: Go randomizes map iteration order per range statement, so any
// map order leaking into routing or reporting (the maporder invariant
// pacorvet enforces statically) shows up here as a run-to-run diff.
func TestRepeatedSweepDeterminism(t *testing.T) {
	outputs := make([]string, 2)
	for i := range outputs {
		var out bytes.Buffer
		if err := run([]string{"-designs", "S1,S2,S3", "-stable", "-j", "4"}, &out); err != nil {
			t.Fatalf("run %d: %v", i+1, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("identical sweeps diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestStableGolden pins the full -stable sweep to the committed golden
// with -checkcache on: every cache hit is re-searched and compared, so a
// pass certifies both that the output is frozen across PRs and that the
// incremental negotiation cache never alters a routing result. CI runs
// the same diff at several worker counts.
func TestStableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep with -checkcache; skipped in -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "stable.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-stable", "-checkcache", "-j", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-stable -checkcache output diverged from testdata/stable.golden:\n--- golden ---\n%s\n--- got ---\n%s",
			want, out.String())
	}
}

// TestParallelDeterminismCSV covers the CSV path the same way (runtime_ms is
// zeroed by -stable).
func TestParallelDeterminismCSV(t *testing.T) {
	dir := t.TempDir()
	files := make([]string, 2)
	for i, j := range []string{"1", "3"} {
		path := filepath.Join(dir, "t2_"+j+".csv")
		if err := run([]string{"-designs", "S1,S2", "-stable", "-j", j, "-csv", path}, &bytes.Buffer{}); err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = string(b)
	}
	if files[0] != files[1] {
		t.Errorf("parallel CSV differs from sequential:\n%s\nvs\n%s", files[0], files[1])
	}
}
