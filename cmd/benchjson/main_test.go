package main

import (
	"testing"
	"time"
)

func TestSweepOnce(t *testing.T) {
	seq := sweepOnce([]string{"S1"}, 1)
	par := sweepOnce([]string{"S1"}, 4)
	if seq <= 0 || par <= 0 {
		t.Fatalf("sweep durations must be positive: %v, %v", seq, par)
	}
	if seq > time.Minute || par > time.Minute {
		t.Fatalf("S1 sweep unexpectedly slow: %v, %v", seq, par)
	}
}

func TestS5SizedSearchDeterministic(t *testing.T) {
	_, obs1, src, dst := s5SizedSearch()
	_, obs2, _, _ := s5SizedSearch()
	if obs1.Count() != obs2.Count() {
		t.Fatalf("obstacle scatter not deterministic: %d vs %d", obs1.Count(), obs2.Count())
	}
	if obs1.Blocked(src) || obs1.Blocked(dst) {
		t.Fatal("endpoints must stay free")
	}
}
