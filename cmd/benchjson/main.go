// Command benchjson measures the repository's performance-trajectory
// benchmarks programmatically (via testing.Benchmark) and emits them as a
// JSON snapshot — the BENCH_PR<n>.json files future PRs regress against.
//
// The measured set mirrors the hot paths this trajectory tracks: steady-state
// A* on a reusable workspace vs a fresh workspace per search (under both the
// binary heap and the Dial bucket open list, plus the bidirectional variant),
// the full PACOR flow per design (sequentially and per worker count of the
// deterministic parallel scheduler), the ChipXL million-cell family, and the
// sequential vs parallel Table 2 sweep. Every row carries the queue mode and
// grid family it ran under so cross-snapshot diffs compare like with like.
//
// Every measurement records the GOMAXPROCS it actually ran under (plus the
// host's CPU count at the snapshot level): a parallel speedup claim is
// meaningless without the processor count behind it, and the two can differ
// per benchmark when the environment changes GOMAXPROCS mid-run. When a
// baseline snapshot is given, measurements sharing a name with a baseline
// entry carry the baseline ns/op and the resulting speedup ratio.
//
// Usage:
//
//	benchjson [-out BENCH_PR8.json] [-pr 8] [-baseline BENCH_PR6.json]
//	          [-designs S1,S3,S5] [-sweep S1,S2,S3,S4,S5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/designcache"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/pacor"
	"repro/internal/route"
	"repro/internal/valve"
)

// Measurement is one benchmark result in the snapshot.
type Measurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	N           int   `json:"n"`
	// GoMaxProcs is the GOMAXPROCS this measurement actually ran under —
	// recorded per benchmark, not assumed from the snapshot header.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Queue names the open-list mode the measurement ran under (auto, heap,
	// bucket, or bidir); Family names the grid family (S for the paper's
	// Table 1 designs, ChipXL for the million-cell stress family). Both are
	// per-row so a baseline diff never compares across modes or scales.
	// Stage names the routing architecture the row exercises: "flat" for the
	// single-stage path, "global" for the tile-coarsening/corridor stage in
	// isolation, "detailed" for the full two-stage hierarchical path (global
	// corridor assignment plus corridor-masked detailed searches).
	Queue     string  `json:"queue,omitempty"`
	Family    string  `json:"family,omitempty"`
	Stage     string  `json:"stage,omitempty"`
	Note      string  `json:"note,omitempty"`
	SpeedupVs string  `json:"speedup_vs,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	// BaselineNsPerOp / SpeedupVsBaseline compare against the same-named
	// entry of the -baseline snapshot (ratio > 1 means this run is faster).
	BaselineNsPerOp   int64   `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Snapshot is the emitted file layout.
type Snapshot struct {
	PR       int    `json:"pr"`
	Go       string `json:"go"`
	MaxProcs int    `json:"gomaxprocs"`
	// NumCPU is the host's logical CPU count; speedup claims from parallel
	// benchmarks are bounded by it no matter what GOMAXPROCS says.
	NumCPU     int                    `json:"numcpu"`
	Baseline   string                 `json:"baseline,omitempty"`
	Notes      string                 `json:"notes,omitempty"`
	Seed       map[string]Measurement `json:"seed_baseline,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output file")
	pr := flag.Int("pr", 10, "PR number stamped into the snapshot")
	baseline := flag.String("baseline", "BENCH_PR8.json", "prior snapshot to diff against (empty = none)")
	designs := flag.String("designs", "S1,S3,S5", "designs for the full-flow benchmarks")
	sweep := flag.String("sweep", "S1,S2,S3,S4,S5", "designs for the sequential-vs-parallel sweep timing")
	flag.Parse()

	snap := Snapshot{
		PR:       *pr,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:   runtime.NumCPU(),
		// The seed A* (per-call slices + container/heap boxing) no longer
		// exists in the tree; its cost on the exact AStarS5 scenario below,
		// measured at the seed commit on this hardware, is pinned here as
		// the trajectory origin.
		Seed: map[string]Measurement{
			"AStarS5PerCallAlloc": {
				NsPerOp:     4953610,
				AllocsPerOp: 47434,
				BytesPerOp:  1481416,
				N:           20,
				GoMaxProcs:  1,
				Note:        "seed route.AStar before the workspace refactor (four O(W*H) slices + map targets + heap boxing per push)",
			},
		},
		Benchmarks: map[string]Measurement{},
	}

	record := func(name string, r testing.BenchmarkResult, note string) {
		snap.Benchmarks[name] = Measurement{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Note:        note,
		}
		fmt.Printf("%-28s %12d ns/op %10d B/op %8d allocs/op (gomaxprocs %d)\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp(), runtime.GOMAXPROCS(0))
	}
	// tag stamps the queue mode, grid family, and routing stage onto an
	// already-recorded row.
	tag := func(name, queue, family, stage string) {
		m := snap.Benchmarks[name]
		m.Queue, m.Family, m.Stage = queue, family, stage
		snap.Benchmarks[name] = m
	}
	// bestOf reruns a benchmark k times and keeps the fastest run. The flow
	// rows complete only a handful of ops inside testing.Benchmark's budget,
	// and on this single-CPU host a GC pause or scheduler hiccup inside a
	// 1-op run can swing the row by 25% — enough to fabricate a regression.
	bestOf := func(k int, fn func(b *testing.B)) testing.BenchmarkResult {
		best := testing.Benchmark(fn)
		for i := 1; i < k; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}

	g, obs, src, dst := s5SizedSearch()
	req := route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}

	record("AStarS5Reuse", bestOf(5, func(b *testing.B) {
		ws := route.NewWorkspace(g)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := ws.AStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	}), "long-lived workspace, generation-stamped arrays")
	tag("AStarS5Reuse", "auto", "S", "flat")

	record("AStarS5ReuseHeap", bestOf(5, func(b *testing.B) {
		ws := route.NewWorkspace(g)
		ws.SetQueueMode(route.QueueHeap)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := ws.AStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	}), "same scenario with the binary heap forced (bucket-vs-heap delta at S5 scale)")
	tag("AStarS5ReuseHeap", "heap", "S", "flat")

	record("AStarS5Fresh", bestOf(5, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := route.NewWorkspace(g).AStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	}), "new workspace per search (per-call allocation comparison point)")
	tag("AStarS5Fresh", "auto", "S", "flat")

	for _, name := range strings.Split(*designs, ",") {
		d, err := bench.Generate(name)
		if err != nil {
			fatal(err)
		}
		record("Flow"+name, bestOf(3, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d, pacor.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}), "full PACOR flow, default params (incremental negotiation cache on)")
		tag("Flow"+name, "auto", "S", "flat")
		record("Flow"+name+"CacheOff", bestOf(3, func(b *testing.B) {
			params := pacor.DefaultParams()
			params.Negotiate.NoCache = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d, params); err != nil {
					b.Fatal(err)
				}
			}
		}), "full PACOR flow with the incremental negotiation cache disabled (byte-identical output)")
		tag("Flow"+name+"CacheOff", "auto", "S", "flat")
	}

	// The deterministic in-flow parallelism: the full S5 flow per worker
	// count of route.RunScheduled. Output is byte-identical across counts,
	// so these isolate the scheduler's cost/benefit.
	if d5, err := bench.Generate("S5"); err == nil {
		var j1 int64
		for _, workers := range []int{1, 2, 4, 8} {
			params := pacor.DefaultParams()
			params.Workers = workers
			r := bestOf(3, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pacor.Route(d5, params); err != nil {
						b.Fatal(err)
					}
				}
			})
			name := fmt.Sprintf("FlowS5Workers%d", workers)
			record(name, r, fmt.Sprintf("full S5 flow, scheduler workers=%d (byte-identical output)", workers))
			tag(name, "auto", "S", "flat")
			if workers == 1 {
				j1 = r.NsPerOp()
			} else {
				m := snap.Benchmarks[name]
				m.SpeedupVs = "FlowS5Workers1"
				m.Speedup = float64(j1) / float64(r.NsPerOp())
				snap.Benchmarks[name] = m
			}
		}
	} else {
		fatal(err)
	}

	// The cross-run design cache on the interactive edit loop (route S5, move
	// one valve, re-route): ColdMiss is the uncached per-step cost, ExactHit
	// replays an unchanged design from the store, NearHit routes ordinary-
	// valve nudges warm-seeded by the cached parent (byte-identical output),
	// and NearHitLM nudges a length-matching valve — the edit class that
	// invalidates its own cluster's candidates and re-runs the MWCP ILP, so
	// its speedup is bounded by the negotiation replays alone.
	if d5, err := bench.Generate("S5"); err == nil {
		params := pacor.DefaultParams()
		record("EditLoopColdMiss", bestOf(3, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d5, params); err != nil {
					b.Fatal(err)
				}
			}
		}), "S5 edit-loop step without the design cache")
		tag("EditLoopColdMiss", "auto", "S", "flat")

		record("EditLoopExactHit", bestOf(3, func(b *testing.B) {
			r := designcache.New(designcache.Options{})
			if _, err := r.Route(d5, params); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Route(d5, params); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := r.Snapshot(); s.Hits != b.N {
				b.Fatalf("expected %d exact hits, got %+v", b.N, s)
			}
		}), "unchanged S5 replayed from the cache store (raw-key exact hit)")
		tag("EditLoopExactHit", "auto", "S", "flat")

		ordinary, lmNudges := editVariants(d5)
		nearRow := func(variants []*valve.Design) func(b *testing.B) {
			return func(b *testing.B) {
				// Two entries: the parent plus the last-routed variant.
				// The parent is touched on every seed pick so it stays
				// resident while each routed variant is evicted — every
				// iteration is a genuine near hit even after b.N wraps
				// the variant list (a bigger cache would silently turn
				// revisited variants into exact hits).
				r := designcache.New(designcache.Options{MaxEntries: 2})
				if _, err := r.Route(d5, params); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.Route(variants[i%len(variants)], params); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				s := r.Snapshot()
				if s.NearHits == 0 || s.SeededHits == 0 {
					b.Fatalf("edit loop never warm-seeded: %+v", s)
				}
				if s.Hits != 0 {
					b.Fatalf("edit loop served %d exact hits — revisited variants leaked into the cache: %+v", s.Hits, s)
				}
			}
		}
		record("EditLoopNearHit", bestOf(3, nearRow(ordinary)),
			"ordinary-valve nudges of S5 warm-seeded by the cached parent (negotiation replay + LM candidate/selection replay, byte-identical output)")
		tag("EditLoopNearHit", "auto", "S", "flat")
		record("EditLoopNearHitLM", bestOf(3, nearRow(lmNudges)),
			"LM-valve nudges of S5: the moved cluster re-runs candidates and the ILP, only negotiation replays (byte-identical output)")
		tag("EditLoopNearHitLM", "auto", "S", "flat")

		chainTo := func(name string) {
			m := snap.Benchmarks[name]
			m.SpeedupVs = "EditLoopColdMiss"
			m.Speedup = float64(snap.Benchmarks["EditLoopColdMiss"].NsPerOp) / float64(m.NsPerOp)
			snap.Benchmarks[name] = m
		}
		chainTo("EditLoopExactHit")
		chainTo("EditLoopNearHit")
		chainTo("EditLoopNearHitLM")
	} else {
		fatal(err)
	}

	// Sequential vs parallel sweep: one pass over designs x modes each way.
	names := strings.Split(*sweep, ",")
	seq := sweepOnce(names, 1)
	par := sweepOnce(names, runtime.GOMAXPROCS(0))
	snap.Benchmarks["Table2SweepSequential"] = Measurement{
		NsPerOp: seq.Nanoseconds(), N: 1, GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("designs %s x 3 modes, 1 worker", *sweep),
	}
	snap.Benchmarks["Table2SweepParallel"] = Measurement{
		NsPerOp: par.Nanoseconds(), N: 1, GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:      fmt.Sprintf("designs %s x 3 modes, %d workers", *sweep, runtime.GOMAXPROCS(0)),
		SpeedupVs: "Table2SweepSequential",
		Speedup:   float64(seq.Nanoseconds()) / float64(par.Nanoseconds()),
	}
	fmt.Printf("%-28s %12d ns (1 worker)\n", "Table2SweepSequential", seq.Nanoseconds())
	fmt.Printf("%-28s %12d ns (%d workers, %.2fx)\n", "Table2SweepParallel",
		par.Nanoseconds(), runtime.GOMAXPROCS(0), float64(seq.Nanoseconds())/float64(par.Nanoseconds()))

	// ChipXL: the million-cell family. The A* rows isolate the open-list
	// swap on a 1000x1000 corner-to-corner search (the scenario where the
	// bucket queue's O(1) pops dominate); the flow rows use the density-
	// preserving 300x300 member, because the full chip takes minutes per op
	// (BenchmarkFlowChipXL/Full exists for that, behind -short).
	gx, obsx, srcx, dstx := chipXLSearch()
	reqx := route.Request{Sources: []geom.Pt{srcx}, Targets: []geom.Pt{dstx}, Obs: obsx}
	for _, mode := range []route.QueueMode{route.QueueHeap, route.QueueBucket} {
		name := "AStarChipXL" + title(mode.String())
		record(name, bestOf(5, func(b *testing.B) {
			ws := route.NewWorkspace(gx)
			ws.SetQueueMode(mode)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := ws.AStar(gx, reqx); !ok {
					b.Fatal("no path")
				}
			}
		}), "1000x1000 grid, 2% obstacles, corner to corner, open list forced to "+mode.String())
		tag(name, mode.String(), "ChipXL", "flat")
	}
	record("AStarChipXLBidir", bestOf(5, func(b *testing.B) {
		ws := route.NewWorkspace(gx)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := ws.BiAStar(gx, reqx); !ok {
				b.Fatal("no path")
			}
		}
	}), "same search, bidirectional (cost-identical, shape may differ; loses to guided unidirectional bucket A* on open grids)")
	tag("AStarChipXLBidir", "bidir", "ChipXL", "flat")
	for _, name := range []string{"AStarChipXLBucket", "AStarChipXLBidir"} {
		m := snap.Benchmarks[name]
		m.SpeedupVs = "AStarChipXLHeap"
		m.Speedup = float64(snap.Benchmarks["AStarChipXLHeap"].NsPerOp) / float64(m.NsPerOp)
		snap.Benchmarks[name] = m
	}

	// The global stage in isolation: tile coarsening plus the corridor-graph
	// adjacency sweep on the full-chip obstacle map — the fixed per-run cost
	// the hierarchy pays before any corridor is assigned.
	record("HierGlobalChipXL", bestOf(5, func(b *testing.B) {
		b.ReportAllocs()
		tl := route.NewTiling(obsx, route.DefaultTileSize)
		for i := 0; i < b.N; i++ {
			tl.Rebuild(obsx, route.DefaultTileSize)
			arcs := 0
			tl.ForEachAdjacency(func(u, v, c int) { arcs++ })
			if arcs == 0 {
				b.Fatal("no tile adjacencies")
			}
		}
	}), "1000x1000 tile coarsening rebuild + adjacency sweep (the global stage's fixed cost)")
	tag("HierGlobalChipXL", "", "ChipXL", "global")

	member := bench.XLSpec(300, 216, 0.02)
	if dx, err := bench.GenerateSpec(member); err == nil {
		flow := func(mode route.QueueMode, hier route.HierMode) func(b *testing.B) {
			return func(b *testing.B) {
				params := pacor.DefaultParams()
				params.Queue = mode
				params.Hier.Mode = hier
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pacor.Route(dx, params); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		// The heap/bucket rows keep their PR 6 names so the baseline chain
		// stays comparable; at 300x300 (> the HierAuto threshold) they now
		// route the escape stage hierarchically. The flat row pins the PR 6
		// code path on this hardware.
		for _, mode := range []route.QueueMode{route.QueueHeap, route.QueueBucket} {
			name := "FlowChipXL300" + title(mode.String())
			record(name, bestOf(3, flow(mode, route.HierAuto)),
				"full flow on the density-preserving 300x300 ChipXL member ("+member.Name+"); HierAuto engages the two-stage escape here")
			tag(name, mode.String(), "ChipXL", "detailed")
		}
		record("FlowChipXL300Flat", bestOf(3, flow(route.QueueBucket, route.HierOff)),
			"same flow with the hierarchy forced off — the PR 6 flat escape path; the bucket row over this one is the tentpole speedup at j=1")
		tag("FlowChipXL300Flat", "bucket", "ChipXL", "flat")
		chain := func(name, vs string) {
			m := snap.Benchmarks[name]
			m.SpeedupVs = vs
			m.Speedup = float64(snap.Benchmarks[vs].NsPerOp) / float64(m.NsPerOp)
			snap.Benchmarks[name] = m
		}
		chain("FlowChipXL300Bucket", "FlowChipXL300Flat")
		chain("FlowChipXL300Heap", "FlowChipXL300Flat")
	} else {
		fatal(err)
	}

	// The full 1000x1000 chip — killed at the default test timeout before the
	// hierarchy, now a single measured op (one run: the op takes minutes, and
	// a second would double the snapshot's wall-clock for noise reduction the
	// single-op rows can't use anyway).
	if full, err := bench.Generate("ChipXL"); err == nil {
		record("FlowChipXLFull", bestOf(1, func(b *testing.B) {
			params := pacor.DefaultParams()
			params.Queue = route.QueueBucket
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(full, params); err != nil {
					b.Fatal(err)
				}
			}
		}), "full 1000x1000 ChipXL flow, hierarchy on by HierAuto (un-skipped by the two-stage escape)")
		tag("FlowChipXLFull", "bucket", "ChipXL", "detailed")
	} else {
		fatal(err)
	}

	var notes []string
	if runtime.NumCPU() == 1 {
		notes = append(notes, "single-CPU host: parallel worker counts cannot exceed 1x wall-clock; "+
			"the j>1 rows measure scheduler overhead, not attainable speedup")
	}
	notes = append(notes, "ChipXL flow rows with stage=detailed route the escape stage through the "+
		"two-stage hierarchy (HierAuto engages above 80000 cells); their output is approximate — "+
		"at 300x300 completion stays 100% with flat-parity matched counts and ~12% longer escape "+
		"channels, while larger members trade completion for tractability "+
		"(see EXPERIMENTS.md for the measured deltas); all Table 1 rows are below the threshold and "+
		"byte-identical to PR 6")
	snap.Notes = strings.Join(notes, " | ")
	if *baseline != "" {
		if err := annotateBaseline(&snap, *baseline); err != nil {
			fatal(err)
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// annotateBaseline loads a prior snapshot and stamps, on every measurement
// sharing a name with a baseline entry, the baseline ns/op and the speedup
// ratio of this run over it.
func annotateBaseline(snap *Snapshot, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return err
	}
	// Chain validation: a snapshot must diff against a genuinely older link.
	// A baseline with no pr field, or one at or ahead of this snapshot's PR,
	// means the chain is miswired (wrong file, or a copy edited by hand) and
	// every speedup_vs_baseline it would produce is meaningless — fail loudly
	// instead of emitting a plausible-looking snapshot.
	if base.PR == 0 {
		return fmt.Errorf("baseline %s has no pr field — not a benchjson snapshot", path)
	}
	if base.PR >= snap.PR {
		return fmt.Errorf("baseline %s is PR %d, not older than this snapshot's PR %d — chain broken", path, base.PR, snap.PR)
	}
	if want := fmt.Sprintf("BENCH_PR%d.json", base.PR); filepath.Base(path) != want {
		return fmt.Errorf("baseline %s carries pr=%d but is not named %s — chain broken", path, base.PR, want)
	}
	snap.Baseline = path
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := snap.Benchmarks[name]
		bm, ok := base.Benchmarks[name]
		if !ok || bm.NsPerOp == 0 || m.NsPerOp == 0 {
			continue
		}
		m.BaselineNsPerOp = bm.NsPerOp
		m.SpeedupVsBaseline = float64(bm.NsPerOp) / float64(m.NsPerOp)
		snap.Benchmarks[name] = m
		fmt.Printf("%-28s vs PR%d: %.2fx\n", name, base.PR, m.SpeedupVsBaseline)
	}
	return nil
}

// sweepOnce routes every design x mode with the given worker count and
// returns the wall time — the same pool shape as cmd/table2.
func sweepOnce(names []string, workers int) time.Duration {
	type job struct {
		name string
		mode pacor.Mode
	}
	var jobs []job
	for _, n := range names {
		for _, m := range []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR} {
			jobs = append(jobs, job{n, m})
		}
	}
	start := time.Now()
	next := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				d, err := bench.Generate(j.name)
				if err != nil {
					fatal(err)
				}
				params := pacor.DefaultParams()
				params.Mode = j.mode
				if _, err := pacor.Route(d, params); err != nil {
					fatal(err)
				}
			}
		}()
	}
	for _, j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()
	return time.Since(start)
}

// editVariants enumerates every valid single-valve unit nudge of d, split
// into ordinary-valve and LM-cluster-valve moves (mirrors the
// BenchmarkFlowEditLoop split in bench_test.go).
func editVariants(d *valve.Design) (ordinary, lm []*valve.Design) {
	inLM := make(map[int]bool)
	for _, c := range d.LMClusters {
		for _, id := range c {
			inLM[id] = true
		}
	}
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for i := range d.Valves {
		for _, dir := range dirs {
			nd, err := bench.Nudge(d, i, dir[0], dir[1])
			if err != nil {
				continue
			}
			if inLM[d.Valves[i].ID] {
				lm = append(lm, nd)
			} else {
				ordinary = append(ordinary, nd)
			}
		}
	}
	if len(ordinary) == 0 || len(lm) == 0 {
		fatal(fmt.Errorf("edit variants: %d ordinary, %d lm — need both", len(ordinary), len(lm)))
	}
	return ordinary, lm
}

// title upper-cases the first letter of a queue-mode name for row naming.
func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// chipXLSearch mirrors the BenchmarkAStarChipXL scenario in bench_test.go: a
// 1000x1000 grid with 2% scattered obstacles, corner to corner.
func chipXLSearch() (grid.Grid, *grid.ObsMap, geom.Pt, geom.Pt) {
	const n = 1000
	g := grid.New(n, n)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(90001))
	for i := 0; i < n*n/50; i++ {
		obs.Set(geom.Pt{X: rng.Intn(n), Y: rng.Intn(n)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: n - 2, Y: n - 2}
	obs.Set(src, false)
	obs.Set(dst, false)
	return g, obs, src, dst
}

// s5SizedSearch mirrors the BenchmarkAStarReuse scenario in bench_test.go:
// an S5-sized (152x152) grid with scattered obstacles, corner to corner.
func s5SizedSearch() (grid.Grid, *grid.ObsMap, geom.Pt, geom.Pt) {
	g := grid.New(152, 152)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		obs.Set(geom.Pt{X: rng.Intn(152), Y: rng.Intn(152)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: 150, Y: 150}
	obs.Set(src, false)
	obs.Set(dst, false)
	return g, obs, src, dst
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
