// Command benchjson measures the repository's performance-trajectory
// benchmarks programmatically (via testing.Benchmark) and emits them as a
// JSON snapshot — the BENCH_PR<n>.json files future PRs regress against.
//
// The measured set mirrors the hot paths this trajectory tracks: steady-state
// A* on a reusable workspace vs a fresh workspace per search, the full PACOR
// flow per design, and the sequential vs parallel Table 2 sweep.
//
// Usage:
//
//	benchjson [-out BENCH_PR1.json] [-designs S1,S3,S5] [-sweep S1,S2,S3,S4,S5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/pacor"
	"repro/internal/route"
)

// Measurement is one benchmark result in the snapshot.
type Measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	Note        string  `json:"note,omitempty"`
	SpeedupVs   string  `json:"speedup_vs,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// Snapshot is the emitted file layout.
type Snapshot struct {
	PR         int                    `json:"pr"`
	Go         string                 `json:"go"`
	MaxProcs   int                    `json:"gomaxprocs"`
	Seed       map[string]Measurement `json:"seed_baseline"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR1.json", "output file")
	designs := flag.String("designs", "S1,S3,S5", "designs for the full-flow benchmarks")
	sweep := flag.String("sweep", "S1,S2,S3,S4,S5", "designs for the sequential-vs-parallel sweep timing")
	flag.Parse()

	snap := Snapshot{
		PR:       1,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		// The seed A* (per-call slices + container/heap boxing) no longer
		// exists in the tree; its cost on the exact AStarS5 scenario below,
		// measured at the seed commit on this hardware, is pinned here as
		// the trajectory origin.
		Seed: map[string]Measurement{
			"AStarS5PerCallAlloc": {
				NsPerOp:     4953610,
				AllocsPerOp: 47434,
				BytesPerOp:  1481416,
				N:           20,
				Note:        "seed route.AStar before the workspace refactor (four O(W*H) slices + map targets + heap boxing per push)",
			},
		},
		Benchmarks: map[string]Measurement{},
	}

	record := func(name string, r testing.BenchmarkResult, note string) {
		snap.Benchmarks[name] = Measurement{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Note:        note,
		}
		fmt.Printf("%-28s %12d ns/op %10d B/op %8d allocs/op\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	g, obs, src, dst := s5SizedSearch()
	req := route.Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}

	record("AStarS5Reuse", testing.Benchmark(func(b *testing.B) {
		ws := route.NewWorkspace(g)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := ws.AStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	}), "long-lived workspace, generation-stamped arrays")

	record("AStarS5Fresh", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := route.NewWorkspace(g).AStar(g, req); !ok {
				b.Fatal("no path")
			}
		}
	}), "new workspace per search (per-call allocation comparison point)")

	for _, name := range strings.Split(*designs, ",") {
		d, err := bench.Generate(name)
		if err != nil {
			fatal(err)
		}
		record("Flow"+name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pacor.Route(d, pacor.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}), "full PACOR flow, default params")
	}

	// Sequential vs parallel sweep: one pass over designs x modes each way.
	names := strings.Split(*sweep, ",")
	seq := sweepOnce(names, 1)
	par := sweepOnce(names, runtime.GOMAXPROCS(0))
	snap.Benchmarks["Table2SweepSequential"] = Measurement{
		NsPerOp: seq.Nanoseconds(), N: 1,
		Note: fmt.Sprintf("designs %s x 3 modes, 1 worker", *sweep),
	}
	snap.Benchmarks["Table2SweepParallel"] = Measurement{
		NsPerOp: par.Nanoseconds(), N: 1,
		Note:      fmt.Sprintf("designs %s x 3 modes, %d workers", *sweep, runtime.GOMAXPROCS(0)),
		SpeedupVs: "Table2SweepSequential",
		Speedup:   float64(seq.Nanoseconds()) / float64(par.Nanoseconds()),
	}
	fmt.Printf("%-28s %12d ns (1 worker)\n", "Table2SweepSequential", seq.Nanoseconds())
	fmt.Printf("%-28s %12d ns (%d workers, %.2fx)\n", "Table2SweepParallel",
		par.Nanoseconds(), runtime.GOMAXPROCS(0), float64(seq.Nanoseconds())/float64(par.Nanoseconds()))

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// sweepOnce routes every design x mode with the given worker count and
// returns the wall time — the same pool shape as cmd/table2.
func sweepOnce(names []string, workers int) time.Duration {
	type job struct {
		name string
		mode pacor.Mode
	}
	var jobs []job
	for _, n := range names {
		for _, m := range []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR} {
			jobs = append(jobs, job{n, m})
		}
	}
	start := time.Now()
	next := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				d, err := bench.Generate(j.name)
				if err != nil {
					fatal(err)
				}
				params := pacor.DefaultParams()
				params.Mode = j.mode
				if _, err := pacor.Route(d, params); err != nil {
					fatal(err)
				}
			}
		}()
	}
	for _, j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()
	return time.Since(start)
}

// s5SizedSearch mirrors the BenchmarkAStarReuse scenario in bench_test.go:
// an S5-sized (152x152) grid with scattered obstacles, corner to corner.
func s5SizedSearch() (grid.Grid, *grid.ObsMap, geom.Pt, geom.Pt) {
	g := grid.New(152, 152)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		obs.Set(geom.Pt{X: rng.Intn(152), Y: rng.Intn(152)}, true)
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: 150, Y: 150}
	obs.Set(src, false)
	obs.Set(dst, false)
	return g, obs, src, dst
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
