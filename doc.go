// Package repro is a from-scratch Go reproduction of "PACOR: Practical
// Control-Layer Routing Flow with Length-Matching Constraint for Flow-Based
// Microfluidic Biochips" (Yao, Ho, Cai — DAC 2015).
//
// The public surface lives in the internal packages (this repository is a
// self-contained research artifact, not an importable library API):
//
//   - internal/pacor is the flow entry point: pacor.Route(design, params).
//   - internal/valve defines the Design input model and its JSON format.
//   - internal/bench regenerates the paper's Table 1 benchmarks.
//   - cmd/pacor, cmd/benchgen, and cmd/table2 are the command-line tools.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured comparison. The root-level
// test files hold the integration tests and the benchmark harness that
// regenerate every table and figure of the paper's evaluation.
package repro
